//===- TissueTests.cpp - Tissue reaction-diffusion layer tests -----------===//
//
// Covers the tissue stack bottom-up: grid geometry and halos, the
// diffusion operator against analytic heat-kernel solutions and exact
// discrete invariants (mass conservation, second-moment growth), the
// publish/apply halo exchange's shard-count independence, the stimulus
// protocol grammar, and the TissueSimulator driver end-to-end
// (determinism across thread counts, checkpoint/resume per layout x
// width point, S1-S2 pacing, preflight validation, activation maps).
//
//===----------------------------------------------------------------------===//

#include "easyml/Sema.h"
#include "models/Registry.h"
#include "sim/Checkpoint.h"
#include "sim/Diffusion.h"
#include "sim/Grid.h"
#include "sim/StateBuffer.h"
#include "sim/Stimulus.h"
#include "sim/TissueSimulator.h"

#include <algorithm>
#include <cmath>
#include <gtest/gtest.h>
#include <memory>
#include <numeric>
#include <vector>

using namespace limpet;
using namespace limpet::exec;
using namespace limpet::sim;

namespace {

std::optional<CompiledModel> compileByName(const char *Name,
                                           EngineConfig Cfg) {
  const models::ModelEntry *M = models::findModel(Name);
  EXPECT_NE(M, nullptr);
  DiagnosticEngine Diags;
  auto Info = easyml::compileModelInfo(M->Name, M->Source, Diags);
  EXPECT_TRUE(Info.has_value()) << Diags.str();
  return CompiledModel::compile(*Info, Cfg);
}

/// Wall-time fields differ between otherwise identical runs; zero them so
/// serialized checkpoints compare bit-for-bit.
CheckpointData normalizedCkpt(CheckpointData C) {
  C.Report.ScanSeconds = 0;
  C.Report.RecoverySeconds = 0;
  C.Report.RunSeconds = 0;
  return C;
}

//===----------------------------------------------------------------------===//
// Grid geometry
//===----------------------------------------------------------------------===//

TEST(TissueGrid, RowMajorNodeMapRoundTrips) {
  TissueGrid G{7, 5, 0.025};
  EXPECT_TRUE(G.valid());
  EXPECT_TRUE(G.is2D());
  EXPECT_EQ(G.numNodes(), 35);
  for (int64_t Y = 0; Y < G.NY; ++Y)
    for (int64_t X = 0; X < G.NX; ++X) {
      int64_t N = G.nodeAt(X, Y);
      EXPECT_EQ(G.xOf(N), X);
      EXPECT_EQ(G.yOf(N), Y);
    }
  TissueGrid Cable{16, 1, 0.01};
  EXPECT_FALSE(Cable.is2D());
  EXPECT_FALSE((TissueGrid{0, 1, 0.025}).valid());
  EXPECT_FALSE((TissueGrid{4, 4, 0.0}).valid());
}

TEST(TissueGrid, HaloIsOneNodeIn1DAndOneRowIn2D) {
  TissueGrid Cable{100, 1, 0.025};
  HaloRegion H = haloFor(Cable, 40, 60);
  EXPECT_EQ(H.LoBegin, 39);
  EXPECT_EQ(H.LoEnd, 40);
  EXPECT_EQ(H.HiBegin, 60);
  EXPECT_EQ(H.HiEnd, 61);
  EXPECT_EQ(H.size(), 2);

  TissueGrid Sheet{10, 8, 0.025};
  H = haloFor(Sheet, 30, 50);
  EXPECT_EQ(H.LoBegin, 20); // one full NX-row below
  EXPECT_EQ(H.LoEnd, 30);
  EXPECT_EQ(H.HiBegin, 50);
  EXPECT_EQ(H.HiEnd, 60); // one full NX-row above
  EXPECT_EQ(H.size(), 20);
}

TEST(TissueGrid, HaloClipsAtGridEdges) {
  TissueGrid Cable{32, 1, 0.025};
  HaloRegion Lo = haloFor(Cable, 0, 8);
  EXPECT_EQ(Lo.LoBegin, Lo.LoEnd); // empty below
  EXPECT_EQ(Lo.HiBegin, 8);
  EXPECT_EQ(Lo.HiEnd, 9);
  HaloRegion Hi = haloFor(Cable, 24, 32);
  EXPECT_EQ(Hi.LoBegin, 23);
  EXPECT_EQ(Hi.HiBegin, Hi.HiEnd); // empty above
  EXPECT_EQ(haloFor(Cable, 8, 8).size(), 0);
  EXPECT_EQ(haloFor(TissueGrid{0, 1, 0.025}, 0, 4).size(), 0);
}

//===----------------------------------------------------------------------===//
// Diffusion operator
//===----------------------------------------------------------------------===//

TEST(Diffusion, MethodNamesParseAndRoundTrip) {
  auto Ftcs = parseDiffusionMethod("ftcs");
  ASSERT_TRUE(Ftcs.hasValue());
  EXPECT_EQ(*Ftcs, DiffusionMethod::FTCS);
  auto Cn = parseDiffusionMethod("cn");
  ASSERT_TRUE(Cn.hasValue());
  EXPECT_EQ(*Cn, DiffusionMethod::CrankNicolson);
  auto Long = parseDiffusionMethod("crank-nicolson");
  ASSERT_TRUE(Long.hasValue());
  EXPECT_EQ(*Long, DiffusionMethod::CrankNicolson);
  EXPECT_FALSE(parseDiffusionMethod("upwind").hasValue());
  EXPECT_STREQ(diffusionMethodName(DiffusionMethod::FTCS), "ftcs");
  EXPECT_STREQ(diffusionMethodName(DiffusionMethod::CrankNicolson), "cn");
}

TEST(Diffusion, FtcsStableDtMatchesCflFormula) {
  DiffusionOperator D1({64, 1, 0.025}, 0.001, DiffusionMethod::FTCS);
  EXPECT_NEAR(D1.maxStableDt(), 0.025 * 0.025 / (2 * 0.001), 1e-12);
  DiffusionOperator D2({16, 16, 0.025}, 0.001, DiffusionMethod::FTCS);
  EXPECT_NEAR(D2.maxStableDt(), 0.025 * 0.025 / (4 * 0.001), 1e-12);
  DiffusionOperator Cn({64, 1, 0.025}, 0.001,
                       DiffusionMethod::CrankNicolson);
  EXPECT_TRUE(std::isinf(Cn.maxStableDt()));
}

/// Gaussian initial condition on a 1D cable; after time t the analytic
/// solution is a wider Gaussian: s(t) = sqrt(s0^2 + 2*sigma*t), with the
/// peak scaled by s0/s(t) (mass is conserved). The domain is wide enough
/// (half-width 2.5 cm vs. 3*s(t) ~ 0.5 cm) that the no-flux boundaries
/// contribute nothing.
static void checkHeatKernel(DiffusionMethod M, double Dt, int64_t Steps,
                            double Tol) {
  const int64_t N = 201;
  const double Dx = 0.025, Sigma = 0.001, S0 = 0.1;
  TissueGrid G{N, 1, Dx};
  DiffusionOperator D(G, Sigma, M);
  std::vector<double> Vm(size_t(N), 0.0);
  const double X0 = (N / 2) * Dx;
  for (int64_t J = 0; J < N; ++J) {
    double X = J * Dx - X0;
    Vm[size_t(J)] = std::exp(-X * X / (2 * S0 * S0));
  }
  for (int64_t S = 0; S < Steps; ++S)
    D.step(Vm.data(), Dt);
  const double T = double(Steps) * Dt;
  const double St = std::sqrt(S0 * S0 + 2 * Sigma * T);
  double MaxErr = 0;
  for (int64_t J = 0; J < N; ++J) {
    double X = J * Dx - X0;
    double Ref = (S0 / St) * std::exp(-X * X / (2 * St * St));
    MaxErr = std::max(MaxErr, std::abs(Vm[size_t(J)] - Ref));
  }
  // Errors are relative to the analytic peak S0/St.
  EXPECT_LT(MaxErr / (S0 / St), Tol)
      << diffusionMethodName(M) << " dt=" << Dt;
}

TEST(Diffusion, Ftcs1DMatchesAnalyticHeatKernel) {
  checkHeatKernel(DiffusionMethod::FTCS, 0.05, 200, 0.01);
}

TEST(Diffusion, CrankNicolson1DMatchesAnalyticHeatKernel) {
  // CN is unconditionally stable: dt here is 4x the FTCS step (and ~2/3
  // of the FTCS CFL limit would even be unstable for the explicit path
  // at dt=0.2... the point is the implicit solve keeps 2nd-order
  // accuracy at a step FTCS could not take efficiently).
  checkHeatKernel(DiffusionMethod::CrankNicolson, 0.2, 50, 0.01);
}

TEST(Diffusion, FtcsSecondMomentGrowsExactly2KPerStep) {
  // For the 3-point stencil the discrete second moment telescopes
  // exactly: M2' = M2 + K * sum_j u_j ((j-1)^2 + (j+1)^2 - 2 j^2)
  //             = M2 + 2*K*M0 while the support stays interior. This is
  // an exact property of the scheme, not an approximation, so the
  // tolerance is rounding-level.
  const int64_t N = 101, Steps = 30, C = N / 2;
  const double Dx = 0.02, Sigma = 0.001, Dt = 0.1;
  const double K = Sigma * Dt / (Dx * Dx);
  DiffusionOperator D({N, 1, Dx}, Sigma, DiffusionMethod::FTCS);
  std::vector<double> Vm(size_t(N), 0.0);
  Vm[size_t(C)] = 1.0; // unit mass delta at the center
  auto Moment2 = [&] {
    double M2 = 0;
    for (int64_t J = 0; J < N; ++J)
      M2 += double((J - C) * (J - C)) * Vm[size_t(J)];
    return M2;
  };
  ASSERT_EQ(Moment2(), 0.0);
  for (int64_t S = 0; S < Steps; ++S)
    D.step(Vm.data(), Dt);
  // Support reach after 30 steps is 30 nodes < C = 50: still interior.
  double Expect = 2.0 * K * double(Steps);
  EXPECT_NEAR(Moment2(), Expect, 1e-9 * Expect);
}

static double sumOf(const std::vector<double> &V) {
  return std::accumulate(V.begin(), V.end(), 0.0);
}

TEST(Diffusion, NoFluxBoundariesConserveTotalVm) {
  struct Case {
    TissueGrid G;
    DiffusionMethod M;
    double Dt;
  } Cases[] = {
      {{64, 1, 0.025}, DiffusionMethod::FTCS, 0.25},
      {{16, 12, 0.025}, DiffusionMethod::FTCS, 0.1},
      {{64, 1, 0.025}, DiffusionMethod::CrankNicolson, 0.5},
  };
  for (const Case &C : Cases) {
    DiffusionOperator D(C.G, 0.001, C.M);
    ASSERT_LE(C.M == DiffusionMethod::FTCS ? C.Dt : 0.0, D.maxStableDt());
    int64_t N = C.G.numNodes();
    std::vector<double> Vm(size_t(N), 0.0);
    for (int64_t J = 0; J < N; ++J) // deterministic rough field
      Vm[size_t(J)] = -80.0 + 120.0 * ((J * 2654435761u % 97) / 96.0);
    double Before = sumOf(Vm);
    for (int S = 0; S < 100; ++S)
      D.step(Vm.data(), C.Dt);
    double After = sumOf(Vm);
    EXPECT_NEAR(After, Before, 1e-12 * std::abs(Before))
        << diffusionMethodName(C.M) << " " << C.G.NX << "x" << C.G.NY;
  }
}

TEST(Diffusion, PublishApplyIsBitIdenticalForAnyShardPartition) {
  // The serial step() and any publish/apply sharding must agree exactly:
  // the apply stage reads only the barrier-published snapshot.
  for (const TissueGrid &G :
       {TissueGrid{131, 1, 0.025}, TissueGrid{17, 9, 0.025}}) {
    int64_t N = G.numNodes();
    std::vector<double> Init(size_t(N), 0.0);
    for (int64_t J = 0; J < N; ++J)
      Init[size_t(J)] = std::sin(0.37 * double(J)) * 40.0 - 50.0;

    DiffusionOperator Serial(G, 0.001, DiffusionMethod::FTCS);
    std::vector<double> Ref = Init;
    for (int S = 0; S < 25; ++S)
      Serial.step(Ref.data(), 0.1);

    for (int64_t Chunk : {int64_t(1), int64_t(7), int64_t(33), N}) {
      DiffusionOperator D(G, 0.001, DiffusionMethod::FTCS);
      std::vector<double> Vm = Init;
      for (int S = 0; S < 25; ++S) {
        for (int64_t B = 0; B < N; B += Chunk)
          D.publish(Vm.data(), B, std::min(B + Chunk, N));
        for (int64_t B = 0; B < N; B += Chunk)
          D.applyFromSnapshot(Vm.data(), 0.1, B, std::min(B + Chunk, N));
      }
      for (int64_t J = 0; J < N; ++J)
        ASSERT_EQ(Vm[size_t(J)], Ref[size_t(J)])
            << "chunk " << Chunk << " node " << J;
    }
  }
}

//===----------------------------------------------------------------------===//
// Stimulus protocols
//===----------------------------------------------------------------------===//

TEST(Stimulus, PulseTrainActivityIsAPureFunctionOfTime) {
  StimEvent E;
  E.Start = 1.0;
  E.Duration = 2.0;
  E.Period = 10.0;
  E.Count = 3;
  EXPECT_FALSE(StimulusProtocol::activeAt(E, 0.5));
  EXPECT_TRUE(StimulusProtocol::activeAt(E, 1.0));
  EXPECT_TRUE(StimulusProtocol::activeAt(E, 2.9));
  EXPECT_FALSE(StimulusProtocol::activeAt(E, 3.5));
  EXPECT_TRUE(StimulusProtocol::activeAt(E, 11.5));  // pulse 1
  EXPECT_TRUE(StimulusProtocol::activeAt(E, 21.5));  // pulse 2
  EXPECT_FALSE(StimulusProtocol::activeAt(E, 31.5)); // train exhausted
  E.Count = 0;                                       // unlimited
  EXPECT_TRUE(StimulusProtocol::activeAt(E, 101.5));
  E.Period = 0; // single pulse regardless of count
  EXPECT_FALSE(StimulusProtocol::activeAt(E, 11.5));
}

TEST(Stimulus, CollectActiveResolvesEdgeRegionsAgainstGrid) {
  TissueGrid G{20, 10, 0.025};
  StimulusProtocol P;
  StimEvent E;
  E.Region = {0, 3, 0, -1}; // full height strip at the left edge
  E.Start = 0.0;
  E.Duration = 1.0;
  E.Strength = 25.0;
  P.Events.push_back(E);
  std::vector<StimulusProtocol::ActiveStim> Out;
  P.collectActive(0.5, G, Out);
  ASSERT_EQ(Out.size(), 1u);
  EXPECT_EQ(Out[0].X0, 0);
  EXPECT_EQ(Out[0].X1, 3);
  EXPECT_EQ(Out[0].Y0, 0);
  EXPECT_EQ(Out[0].Y1, 9); // -1 expanded to NY-1
  EXPECT_EQ(Out[0].Strength, 25.0);
  P.collectActive(5.0, G, Out);
  EXPECT_TRUE(Out.empty());
  EXPECT_EQ(P.currentAt(0.5, 2, 7, G), 25.0);
  EXPECT_EQ(P.currentAt(0.5, 4, 7, G), 0.0);
}

TEST(Stimulus, S1S2FactoryBuildsTrainPlusPrematureBeat) {
  StimulusProtocol P = StimulusProtocol::s1s2(300, 4, 250, 40, 2, 5);
  ASSERT_EQ(P.Events.size(), 2u);
  const StimEvent &S1 = P.Events[0], &S2 = P.Events[1];
  EXPECT_EQ(S1.Count, 4);
  EXPECT_EQ(S1.Period, 300.0);
  EXPECT_EQ(S1.Region.X1, 4); // EdgeWidth columns
  // S2 fires once, the coupling interval after the last S1 onset.
  EXPECT_EQ(S2.Count, 1);
  EXPECT_EQ(S2.Start, S1.Start + 3 * 300.0 + 250.0);
}

TEST(Stimulus, ParseGrammarAndCanonicalStringRoundTrip) {
  TissueGrid G{64, 32, 0.025};
  for (const char *Spec :
       {"s1s2:period=300,count=8,s2=260,amp=40,dur=2,width=5",
        "cross:s1amp=40,s1dur=2,s2start=165,s2amp=40,s2dur=3",
        "region:x0=0,x1=4,y0=0,y1=-1,start=1,dur=2,amp=30,period=100,"
        "count=0",
        "s1s2", "cross", "none",
        "region:x0=0,x1=2;region:x0=60,x1=63,start=50"}) {
    auto P = StimulusProtocol::parse(Spec, G);
    ASSERT_TRUE(P.hasValue()) << Spec;
    auto Q = StimulusProtocol::parse(P->str(), G);
    ASSERT_TRUE(Q.hasValue()) << P->str();
    EXPECT_EQ(P->str(), Q->str()) << Spec;
  }
  auto None = StimulusProtocol::parse("none", G);
  ASSERT_TRUE(None.hasValue());
  EXPECT_TRUE(None->empty());
  EXPECT_EQ(None->str(), "none");
}

TEST(Stimulus, ParseRejectsUnknownProtocolsAndMalformedLists) {
  TissueGrid G{64, 1, 0.025};
  EXPECT_FALSE(StimulusProtocol::parse("spiral", G).hasValue());
  EXPECT_FALSE(StimulusProtocol::parse("s1s2:period", G).hasValue());
  EXPECT_FALSE(StimulusProtocol::parse("s1s2:bogus=1", G).hasValue());
  EXPECT_FALSE(StimulusProtocol::parse("region:x0=abc", G).hasValue());
}

//===----------------------------------------------------------------------===//
// StateBuffer tissue geometry
//===----------------------------------------------------------------------===//

TEST(StateBufferTissue, AttachGridRequiresMatchingNodeCount) {
  auto M = compileByName("HodgkinHuxley", EngineConfig::baseline());
  ASSERT_TRUE(M.has_value());
  StateBuffer Buf(*M, 32);
  EXPECT_FALSE(Buf.hasGrid());
  Status Bad = Buf.attachGrid({5, 5, 0.025}); // 25 != 32 cells
  EXPECT_FALSE(Bad.isOk());
  EXPECT_FALSE(Buf.hasGrid());
  Status Ok = Buf.attachGrid({8, 4, 0.025});
  ASSERT_TRUE(Ok.isOk()) << Ok.message();
  ASSERT_TRUE(Buf.hasGrid());
  EXPECT_EQ(Buf.grid().NX, 8);
  EXPECT_EQ(Buf.grid().NY, 4);
  HaloRegion H = Buf.haloFor(8, 16);
  EXPECT_EQ(H.LoBegin, 0); // one NX-row below
  EXPECT_EQ(H.HiEnd, 24);  // one NX-row above
}

TEST(StateBufferTissue, ColumnViewReadsMatchStateAccessorsPerLayout) {
  for (EngineConfig Cfg :
       {EngineConfig::baseline(), EngineConfig::limpetMLIR(4),
        EngineConfig::limpetMLIR(8)}) {
    auto M = compileByName("HodgkinHuxley", Cfg);
    ASSERT_TRUE(M.has_value());
    StateBuffer Buf(*M, 37); // ragged vs. any block width
    for (int64_t C = 0; C < 37; ++C)
      for (unsigned Sv = 0; Sv < Buf.numSv(); ++Sv)
        Buf.writeState(C, Sv, double(C) + 0.01 * double(Sv));
    std::vector<double> Dense(37);
    for (unsigned Sv = 0; Sv < Buf.numSv(); ++Sv) {
      Buf.column(Sv).copyOut(Dense.data(), 0, 37);
      for (int64_t C = 0; C < 37; ++C)
        ASSERT_EQ(Dense[size_t(C)], Buf.readState(C, Sv))
            << "layout " << int(Cfg.Layout) << " sv " << Sv;
    }
  }
}

//===----------------------------------------------------------------------===//
// TissueSimulator
//===----------------------------------------------------------------------===//

static TissueOptions cableOpts(int64_t NX, int64_t NY, int64_t Steps,
                               double Dt = 0.01) {
  TissueOptions T;
  T.Grid = {NX, NY, 0.025};
  T.Sigma = 0.001;
  T.Sim.NumSteps = Steps;
  T.Sim.Dt = Dt;
  return T;
}

TEST(TissueSim, GridNodeCountOverridesRequestedCells) {
  auto M = compileByName("HodgkinHuxley", EngineConfig::limpetMLIR(4));
  ASSERT_TRUE(M.has_value());
  TissueOptions T = cableOpts(12, 5, 10);
  T.Sim.NumCells = 9999; // ignored: the grid defines the population
  TissueSimulator S(*M, T);
  EXPECT_EQ(S.options().NumCells, 60);
  EXPECT_EQ(S.stateBuffer().numCells(), 60);
  ASSERT_TRUE(S.stateBuffer().hasGrid());
  EXPECT_EQ(S.stateBuffer().grid().NX, 12);
}

TEST(TissueSim, EmptyProtocolSeedsDefaultEdgePulse) {
  auto M = compileByName("HodgkinHuxley", EngineConfig::baseline());
  ASSERT_TRUE(M.has_value());
  TissueOptions T = cableOpts(64, 1, 10);
  T.Sim.StimPeriod = 50.0;
  TissueSimulator S(*M, T);
  ASSERT_FALSE(S.stimulus().empty());
  const StimEvent &E = S.stimulus().Events[0];
  EXPECT_EQ(E.Region.X0, 0);
  EXPECT_EQ(E.Region.X1, 3); // NX/16 columns
  EXPECT_EQ(E.Period, 50.0);
  EXPECT_EQ(E.Count, 0); // periodic knob => unlimited train
}

TEST(TissueSim, CrankNicolsonOn2DDowngradesToFtcs) {
  auto M = compileByName("HodgkinHuxley", EngineConfig::baseline());
  ASSERT_TRUE(M.has_value());
  TissueOptions T = cableOpts(8, 8, 10);
  T.Method = DiffusionMethod::CrankNicolson;
  TissueSimulator S(*M, T);
  EXPECT_EQ(S.tissueOptions().Method, DiffusionMethod::FTCS);
  EXPECT_EQ(S.diffusion().method(), DiffusionMethod::FTCS);

  TissueOptions Cable = cableOpts(64, 1, 10);
  Cable.Method = DiffusionMethod::CrankNicolson;
  TissueSimulator S1(*M, Cable);
  EXPECT_EQ(S1.diffusion().method(), DiffusionMethod::CrankNicolson);
}

TEST(TissueSim, PreflightEnforcesTheFtcsCflLimit) {
  auto M = compileByName("HodgkinHuxley", EngineConfig::baseline());
  ASSERT_TRUE(M.has_value());
  TissueOptions T = cableOpts(64, 1, 10);
  {
    TissueSimulator S(*M, T);
    Status Ok = S.preflight();
    EXPECT_TRUE(Ok.isOk()) << Ok.message();
  }
  T.Sim.Dt = 1.0; // half-step 0.5 ms > dx^2/(2 sigma) = 0.3125 ms
  {
    TissueSimulator S(*M, T);
    Status Bad = S.preflight();
    ASSERT_FALSE(Bad.isOk());
    EXPECT_NE(Bad.message().find("CFL"), std::string::npos);
    EXPECT_NE(Bad.message().find("cn"), std::string::npos);
  }
  // Crank-Nicolson lifts the limit entirely.
  T.Method = DiffusionMethod::CrankNicolson;
  {
    TissueSimulator S(*M, T);
    Status Ok = S.preflight();
    EXPECT_TRUE(Ok.isOk()) << Ok.message();
  }
}

TEST(TissueSim, RunsAreBitIdenticalAcrossShardCounts) {
  // The halo-exchange barrier must make tissue runs independent of the
  // shard partition: 1, 2 and 8 threads on ragged 1D and 2D grids.
  for (const TissueGrid &G :
       {TissueGrid{131, 1, 0.025}, TissueGrid{17, 9, 0.025}}) {
    std::string Ref;
    for (unsigned Threads : {1u, 2u, 8u}) {
      auto M = compileByName("HodgkinHuxley", EngineConfig::limpetMLIR(4));
      ASSERT_TRUE(M.has_value());
      TissueOptions T = cableOpts(G.NX, G.NY, 60, 0.005);
      T.Sim.NumThreads = Threads;
      TissueSimulator S(*M, T);
      ASSERT_TRUE(S.preflight().isOk());
      S.run();
      EXPECT_EQ(S.stepsDone(), 60);
      std::string Bytes =
          serializeCheckpoint(normalizedCkpt(S.captureCheckpoint()));
      if (Threads == 1)
        Ref = Bytes;
      else
        EXPECT_EQ(Bytes, Ref)
            << G.NX << "x" << G.NY << " threads=" << Threads;
    }
  }
}

TEST(TissueSim, CheckpointSerializationRoundTripsTissueSection) {
  auto M = compileByName("HodgkinHuxley", EngineConfig::limpetMLIR(4));
  ASSERT_TRUE(M.has_value());
  TissueOptions T = cableOpts(16, 4, 20, 0.005);
  T.Method = DiffusionMethod::FTCS;
  TissueSimulator S(*M, T);
  S.run();
  CheckpointData C = S.captureCheckpoint();
  EXPECT_EQ(C.TissueNX, 16);
  EXPECT_EQ(C.TissueNY, 4);
  EXPECT_EQ(C.TissueDx, 0.025);
  EXPECT_EQ(C.TissueSigma, 0.001);
  EXPECT_EQ(C.TissueMethod, uint8_t(DiffusionMethod::FTCS));
  EXPECT_FALSE(C.TissueStim.empty());
  auto Back = deserializeCheckpoint(serializeCheckpoint(C));
  ASSERT_TRUE(Back.hasValue());
  EXPECT_EQ(serializeCheckpoint(*Back), serializeCheckpoint(C));
  EXPECT_EQ(Back->TissueStim, C.TissueStim);
}

TEST(TissueSim, ResumeIsBitIdenticalPerLayoutAndWidth) {
  // Interrupt at step 60 of 120 and resume in a fresh simulator; the
  // final state must match the uninterrupted run bit-for-bit at every
  // layout x width point.
  EngineConfig SoA = EngineConfig::baseline();
  SoA.Layout = codegen::StateLayout::SoA;
  for (EngineConfig Cfg : {EngineConfig::baseline(),
                           EngineConfig::limpetMLIR(4),
                           EngineConfig::limpetMLIR(8), SoA}) {
    auto M = compileByName("HodgkinHuxley", Cfg);
    ASSERT_TRUE(M.has_value());

    TissueOptions Full = cableOpts(48, 1, 120, 0.005);
    TissueSimulator A(*M, Full);
    A.run();
    std::string Want =
        serializeCheckpoint(normalizedCkpt(A.captureCheckpoint()));

    TissueOptions Half = Full;
    Half.Sim.NumSteps = 60;
    TissueSimulator B(*M, Half);
    B.run();
    CheckpointData Mid = B.captureCheckpoint();
    EXPECT_EQ(Mid.StepCount, 60);

    TissueSimulator C(*M, Full);
    Status R = C.resumeFrom(Mid);
    ASSERT_TRUE(R.isOk()) << R.message();
    C.run(); // NumSteps is the total target: 60 more steps
    EXPECT_EQ(C.stepsDone(), 120);
    EXPECT_EQ(serializeCheckpoint(normalizedCkpt(C.captureCheckpoint())),
              Want)
        << "layout " << int(Cfg.Layout) << " width " << Cfg.Width;
  }
}

TEST(TissueSim, ResumeCrossChecksGeometryDiffusionAndStimulus) {
  auto M = compileByName("HodgkinHuxley", EngineConfig::limpetMLIR(4));
  ASSERT_TRUE(M.has_value());
  TissueOptions T = cableOpts(32, 2, 30, 0.005);
  TissueSimulator S(*M, T);
  S.run();
  CheckpointData C = S.captureCheckpoint();

  {
    // A plain population simulator must refuse the diffusion-coupled
    // checkpoint outright.
    SimOptions P;
    P.NumCells = 64;
    P.NumSteps = 30;
    P.Dt = 0.005;
    Simulator Plain(*M, P);
    Status R = Plain.resumeFrom(C);
    ASSERT_FALSE(R.isOk());
    EXPECT_NE(R.message().find("tissue"), std::string::npos);
  }
  {
    TissueOptions Wrong = T;
    Wrong.Grid = {64, 1, 0.025}; // same node count, different geometry
    TissueSimulator W(*M, Wrong);
    EXPECT_FALSE(W.resumeFrom(C).isOk());
  }
  {
    TissueOptions Wrong = T;
    Wrong.Sigma = 0.002;
    TissueSimulator W(*M, Wrong);
    Status R = W.resumeFrom(C);
    ASSERT_FALSE(R.isOk());
    EXPECT_NE(R.message().find("diffusion"), std::string::npos);
  }
  {
    TissueOptions Wrong = T;
    Wrong.Stim.Events.push_back(StimEvent{});
    TissueSimulator W(*M, Wrong);
    EXPECT_FALSE(W.resumeFrom(C).isOk());
  }
  {
    TissueOptions Same = T;
    TissueSimulator Ok(*M, Same);
    Status R = Ok.resumeFrom(C);
    EXPECT_TRUE(R.isOk()) << R.message();
  }
}

TEST(TissueSim, S1S2PacingIsDeterministicAcrossResume) {
  // An S1-S2 protocol is a pure function of simulation time, so a run
  // interrupted between S1 and S2 and resumed must land exactly on the
  // uninterrupted trajectory.
  auto M = compileByName("HodgkinHuxley", EngineConfig::limpetMLIR(4));
  ASSERT_TRUE(M.has_value());
  TissueGrid G{64, 1, 0.025};
  auto Proto =
      StimulusProtocol::parse("s1s2:period=4,count=2,s2=3,amp=40,dur=1,"
                              "width=4",
                              G);
  ASSERT_TRUE(Proto.hasValue());

  TissueOptions Full = cableOpts(64, 1, 500, 0.02); // 10 ms: S1,S1,S2
  Full.Stim = *Proto;
  auto runTo = [&](int64_t Steps, const CheckpointData *From) {
    TissueOptions T = Full;
    T.Sim.NumSteps = Steps;
    auto S = std::make_unique<TissueSimulator>(*M, T);
    if (From) {
      Status R = S->resumeFrom(*From);
      EXPECT_TRUE(R.isOk()) << R.message();
    }
    S->run();
    return S;
  };

  auto A = runTo(500, nullptr);
  auto B = runTo(250, nullptr); // mid-train interrupt point
  CheckpointData Mid = B->captureCheckpoint();
  auto C = runTo(500, &Mid);
  EXPECT_EQ(serializeCheckpoint(normalizedCkpt(A->captureCheckpoint())),
            serializeCheckpoint(normalizedCkpt(C->captureCheckpoint())));
}

TEST(TissueSim, ActivationMapTracksAPropagatingWavefront) {
  // Default edge stimulus on an HH cable: the wavefront must activate
  // nodes in x order and yield a finite, positive conduction velocity.
  auto M = compileByName("HodgkinHuxley", EngineConfig::limpetMLIR(4));
  ASSERT_TRUE(M.has_value());
  TissueOptions T = cableOpts(64, 1, 4000, 0.01); // 40 ms
  T.Sim.NumThreads = 2;
  TissueSimulator S(*M, T);
  ASSERT_TRUE(S.preflight().isOk());
  S.enableActivationMap(-20.0);
  S.run();
  double TA = S.activationTime(8), TB = S.activationTime(24);
  ASSERT_TRUE(std::isfinite(TA)) << "node 8 never activated";
  ASSERT_TRUE(std::isfinite(TB)) << "node 24 never activated";
  EXPECT_GT(TB, TA); // the wave travels away from the x=0 edge
  double CV = S.conductionVelocity(8, 24);
  ASSERT_TRUE(std::isfinite(CV));
  EXPECT_GT(CV, 0.0);
  EXPECT_LT(CV, 1.0); // cm/ms; physiological CVs are well below this
  EXPECT_TRUE(std::isnan(S.activationTime(9999)));
  EXPECT_TRUE(std::isnan(S.conductionVelocity(8, 9999)));
}

} // namespace
