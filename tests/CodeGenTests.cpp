//===- CodeGenTests.cpp - codegen/MLIRCodeGen unit tests ----------------------===//

#include "codegen/MLIRCodeGen.h"
#include "easyml/Sema.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

using namespace limpet;
using namespace limpet::codegen;
using namespace limpet::ir;

namespace {

constexpr const char MiniModel[] = R"(
Vm; .external(); .nodal();
Iion; .external();
group{ g = 0.5; E = -80.0; }.param();
Vm_init = -80.0;
diff_w = 0.1*(Vm - E) - 0.2*w;
w_init = 0.25;
Iion = g*(Vm - E) + w;
)";

easyml::ModelInfo miniInfo() {
  DiagnosticEngine Diags;
  auto Info = easyml::compileModelInfo("mini", MiniModel, Diags);
  EXPECT_TRUE(Info.has_value()) << Diags.str();
  return *Info;
}

TEST(CodeGen, KernelVerifies) {
  for (StateLayout Layout :
       {StateLayout::AoS, StateLayout::SoA, StateLayout::AoSoA}) {
    CodeGenOptions Options;
    Options.Layout = Layout;
    GeneratedKernel K = generateKernel(miniInfo(), Options);
    VerifyResult R = verifyFunction(K.ScalarFunc);
    EXPECT_TRUE(R) << stateLayoutName(Layout) << ": " << R.Message;
  }
}

TEST(CodeGen, AbiShape) {
  GeneratedKernel K = generateKernel(miniInfo(), CodeGenOptions());
  EXPECT_EQ(K.Abi.NumExternals, 2u);
  EXPECT_EQ(K.Abi.NumParams, 2u);
  EXPECT_EQ(K.Abi.NumStateVars, 1u);
  Block &Entry = funcBody(K.ScalarFunc);
  EXPECT_EQ(Entry.numArguments(), K.Abi.numArgs());
  EXPECT_TRUE(Entry.argument(K.Abi.stateArg())->type().isMemRef());
  EXPECT_TRUE(Entry.argument(K.Abi.dtArg())->type().isF64());
  EXPECT_TRUE(Entry.argument(K.Abi.startArg())->type().isI64());
}

TEST(CodeGen, CellLoopMarked) {
  GeneratedKernel K = generateKernel(miniInfo(), CodeGenOptions());
  unsigned CellLoops = 0;
  K.ScalarFunc->walk([&](Operation *Op) {
    if (Op->opcode() == OpCode::ScfFor)
      CellLoops += Op->hasAttr(attrs::CellLoop);
  });
  EXPECT_EQ(CellLoops, 1u);
}

TEST(CodeGen, AccessesCarryRoleAttributes) {
  GeneratedKernel K = generateKernel(miniInfo(), CodeGenOptions());
  unsigned StateLoads = 0, ExtLoads = 0, ParamLoads = 0, StateStores = 0,
           ExtStores = 0;
  K.ScalarFunc->walk([&](Operation *Op) {
    if (Op->opcode() == OpCode::MemLoad) {
      std::string Role = Op->attr(attrs::Role).asString();
      StateLoads += Role == "state";
      ExtLoads += Role == "ext";
      ParamLoads += Role == "param";
    }
    if (Op->opcode() == OpCode::MemStore) {
      std::string Role = Op->attr(attrs::Role).asString();
      StateStores += Role == "state";
      ExtStores += Role == "ext";
    }
  });
  EXPECT_EQ(StateLoads, 1u);  // w
  EXPECT_EQ(ExtLoads, 1u);    // Vm
  EXPECT_EQ(ParamLoads, 2u);  // g, E
  EXPECT_EQ(StateStores, 1u); // w
  EXPECT_EQ(ExtStores, 1u);   // Iion
}

TEST(CodeGen, ParamLoadsHoistedByLICM) {
  GeneratedKernel K = generateKernel(miniInfo(), CodeGenOptions());
  // After the default pipeline, parameter loads live in the preheader.
  Block &Entry = funcBody(K.ScalarFunc);
  unsigned ParamLoadsInPreheader = 0;
  for (Operation *Op : Entry.ops())
    if (Op->opcode() == OpCode::MemLoad &&
        Op->attr(attrs::Role).asString() == "param")
      ++ParamLoadsInPreheader;
  EXPECT_EQ(ParamLoadsInPreheader, 2u);
}

TEST(CodeGen, StoresFollowAllLoads) {
  // The state update must be simultaneous: every load precedes every
  // store in the loop body.
  GeneratedKernel K = generateKernel(miniInfo(), CodeGenOptions());
  Operation *CellLoop = nullptr;
  K.ScalarFunc->walk([&](Operation *Op) {
    if (Op->opcode() == OpCode::ScfFor)
      CellLoop = Op;
  });
  ASSERT_NE(CellLoop, nullptr);
  bool SeenStore = false;
  for (Operation *Op : forBody(CellLoop).ops()) {
    if (Op->opcode() == OpCode::MemStore)
      SeenStore = true;
    if (Op->opcode() == OpCode::MemLoad)
      EXPECT_FALSE(SeenStore) << "load after store in kernel body";
  }
}

TEST(CodeGen, ProgramExpandsIntegrators) {
  easyml::ModelInfo Info = miniInfo();
  ModelProgram P = buildModelProgram(Info);
  ASSERT_EQ(P.StateUpdates.size(), 1u);
  // fe: w + dt*f — references __dt.
  EXPECT_TRUE(easyml::exprReferences(*P.StateUpdates[0], "__dt"));
  ASSERT_EQ(P.ExternalUpdates.size(), 2u);
  EXPECT_EQ(P.ExternalUpdates[0], nullptr); // Vm not computed
  EXPECT_NE(P.ExternalUpdates[1], nullptr); // Iion computed
}

TEST(CodeGen, NoLutOptionDisablesExtraction) {
  DiagnosticEngine Diags;
  auto Info = easyml::compileModelInfo(
      "lutty",
      "Vm; .external(); .lookup(-100, 100, 0.1);\nIion; .external();\n"
      "diff_w = exp(Vm/25.0) - w;\nw_init = 0;\nIion = w;",
      Diags);
  ASSERT_TRUE(Info.has_value()) << Diags.str();

  CodeGenOptions WithLut;
  GeneratedKernel K1 = generateKernel(*Info, WithLut);
  EXPECT_EQ(K1.Program.Luts.Tables.size(), 1u);
  EXPECT_GE(K1.Program.Luts.totalColumns(), 1u);

  CodeGenOptions NoLut;
  NoLut.EnableLuts = false;
  GeneratedKernel K2 = generateKernel(*Info, NoLut);
  EXPECT_TRUE(K2.Program.Luts.empty());
  // Without LUTs the exp stays in the kernel.
  unsigned Exps = 0;
  K2.ScalarFunc->walk(
      [&](Operation *Op) { Exps += Op->opcode() == OpCode::MathExp; });
  EXPECT_GE(Exps, 1u);
}

TEST(CodeGen, TernaryLowersToSelect) {
  DiagnosticEngine Diags;
  auto Info = easyml::compileModelInfo(
      "tern",
      "Vm; .external();\nIion; .external();\n"
      "diff_w = ((Vm < 0.0) ? 1.0 : 2.0) - w;\nw_init = 0;\nIion = w;",
      Diags);
  ASSERT_TRUE(Info.has_value());
  GeneratedKernel K = generateKernel(*Info, CodeGenOptions());
  unsigned Selects = 0, Cmps = 0;
  K.ScalarFunc->walk([&](Operation *Op) {
    Selects += Op->opcode() == OpCode::ArithSelect;
    Cmps += Op->opcode() == OpCode::ArithCmpF;
  });
  EXPECT_EQ(Selects, 1u);
  EXPECT_EQ(Cmps, 1u);
}

TEST(CodeGen, SharedSubtreesEmittedOnce) {
  // rk2 shares f's subtree; CSE plus memoized emission must keep a single
  // exp in the kernel for the first evaluation.
  DiagnosticEngine Diags;
  auto Info = easyml::compileModelInfo(
      "rk2m",
      "Vm; .external();\nIion; .external();\n"
      "diff_w = exp(Vm/25.0) - w;\nw_init = 0;\nw; .method(rk2);\n"
      "Iion = w;",
      Diags);
  ASSERT_TRUE(Info.has_value());
  CodeGenOptions NoLut;
  NoLut.EnableLuts = false;
  GeneratedKernel K = generateKernel(*Info, NoLut);
  unsigned Exps = 0;
  K.ScalarFunc->walk(
      [&](Operation *Op) { Exps += Op->opcode() == OpCode::MathExp; });
  // f(w) and f(w_mid) share the Vm-only exp: exactly one survives CSE.
  EXPECT_EQ(Exps, 1u);
}

} // namespace
