//===- SemaTests.cpp - easyml/Sema unit tests -------------------------------===//

#include "easyml/ConstEval.h"
#include "easyml/Sema.h"

#include <gtest/gtest.h>

using namespace limpet;
using namespace limpet::easyml;

namespace {

ModelInfo analyzeOk(std::string_view Src) {
  DiagnosticEngine Diags;
  auto Info = compileModelInfo("test", Src, Diags);
  EXPECT_TRUE(Info.has_value()) << Diags.str();
  return Info ? *Info : ModelInfo();
}

void expectError(std::string_view Src, std::string_view Fragment) {
  DiagnosticEngine Diags;
  auto Info = compileModelInfo("test", Src, Diags);
  EXPECT_FALSE(Info.has_value());
  EXPECT_NE(Diags.str().find(Fragment), std::string::npos) << Diags.str();
}

constexpr const char MiniModel[] = R"(
Vm; .external(); .nodal();
Iion; .external();
group{ g = 0.5; E = -80.0; }.param();
Vm_init = -80.0;
diff_w = 0.1*(Vm - E) - 0.2*w;
w_init = 0.25;
Iion = g*(Vm - E) + w;
)";

TEST(Sema, ClassifiesNames) {
  ModelInfo Info = analyzeOk(MiniModel);
  ASSERT_EQ(Info.Externals.size(), 2u);
  EXPECT_EQ(Info.Externals[0].Name, "Vm");
  EXPECT_TRUE(Info.Externals[0].IsRead);
  EXPECT_FALSE(Info.Externals[0].IsComputed);
  EXPECT_EQ(Info.Externals[1].Name, "Iion");
  EXPECT_TRUE(Info.Externals[1].IsComputed);

  ASSERT_EQ(Info.Params.size(), 2u);
  EXPECT_EQ(Info.Params[0].Name, "g");
  EXPECT_DOUBLE_EQ(Info.Params[0].DefaultValue, 0.5);
  EXPECT_DOUBLE_EQ(Info.Params[1].DefaultValue, -80.0);

  ASSERT_EQ(Info.StateVars.size(), 1u);
  EXPECT_EQ(Info.StateVars[0].Name, "w");
  EXPECT_DOUBLE_EQ(Info.StateVars[0].Init, 0.25);
  EXPECT_EQ(Info.StateVars[0].Method, IntegMethod::ForwardEuler);
}

TEST(Sema, ExternalInitsCaptured) {
  ModelInfo Info = analyzeOk(MiniModel);
  EXPECT_DOUBLE_EQ(Info.Externals[0].Init, -80.0);
}

TEST(Sema, MethodMarkupParsed) {
  ModelInfo Info = analyzeOk(
      "Vm; .external();\nIion; .external();\n"
      "diff_w = -w; w_init = 1; w; .method(rk4);\nIion = w;");
  EXPECT_EQ(Info.StateVars[0].Method, IntegMethod::RK4);
}

TEST(Sema, AllMethodNamesParse) {
  for (const char *Name :
       {"fe", "rk2", "rk4", "rush_larsen", "sundnes", "markov_be"}) {
    IntegMethod M;
    EXPECT_TRUE(parseIntegMethod(Name, M)) << Name;
    EXPECT_EQ(integMethodName(M), Name);
  }
  IntegMethod M;
  EXPECT_FALSE(parseIntegMethod("euler", M));
}

TEST(Sema, UnknownMethodIsError) {
  expectError("diff_w = -w; w; .method(fancy);", "unknown integration");
}

TEST(Sema, IntermediatesInlinedIntoDiff) {
  ModelInfo Info = analyzeOk(
      "Vm; .external();\nIion; .external();\n"
      "a = Vm*2.0;\nb = a + 1.0;\ndiff_w = b - w;\nw_init = 0;\nIion = w;");
  // The inlined diff references only Vm and w.
  auto Vars = exprFreeVars(*Info.StateVars[0].Diff);
  std::sort(Vars.begin(), Vars.end());
  EXPECT_EQ(Vars, (std::vector<std::string>{"Vm", "w"}));
  // The raw diff still references the intermediate.
  EXPECT_TRUE(exprReferences(*Info.StateVars[0].DiffRaw, "b"));
  EXPECT_EQ(Info.Intermediates.size(), 2u);
}

TEST(Sema, ComputedExternalInlinedIntoOthers) {
  // A reference to Iion elsewhere must see Iion's equation (SSA), not the
  // stale array value.
  ModelInfo Info = analyzeOk(
      "Vm; .external();\nIion; .external();\n"
      "Iion = 2.0*Vm;\ndiff_w = Iion - w;\nw_init = 0;");
  auto Vars = exprFreeVars(*Info.StateVars[0].Diff);
  std::sort(Vars.begin(), Vars.end());
  EXPECT_EQ(Vars, (std::vector<std::string>{"Vm", "w"}));
}

TEST(Sema, SelfReferencingExternalReadsIncomingValue) {
  // Iion = Iion + ... (accumulation): the RHS reference stays a load.
  ModelInfo Info = analyzeOk(
      "Vm; .external();\nIion; .external();\n"
      "Iion = Iion + Vm;\ndiff_w = -w;\nw_init = 1;");
  EXPECT_TRUE(exprReferences(*Info.Externals[1].Value, "Iion"));
}

TEST(Sema, IfDesugarsToTernary) {
  ModelInfo Info = analyzeOk(
      "Vm; .external();\nIion; .external();\n"
      "if (Vm < 0.0) { rate = 1.0; } else { rate = 2.0; }\n"
      "diff_w = rate - w;\nw_init = 0;\nIion = w;");
  ASSERT_EQ(Info.Intermediates.size(), 1u);
  EXPECT_EQ(printExpr(*Info.Intermediates[0].Value),
            "((Vm < 0) ? 1 : 2)");
}

TEST(Sema, IfBranchesMustAssignSameVars) {
  expectError("Vm; .external();\nIion; .external();\n"
              "if (Vm < 0.0) { a = 1.0; } else { b = 2.0; }\n"
              "diff_w = -w; Iion = w;",
              "branch");
}

TEST(Sema, DoubleAssignmentRejected) {
  expectError("a = 1.0;\na = 2.0;\ndiff_w = a - w;", "more than once");
}

TEST(Sema, UndefinedVariableRejected) {
  expectError("Vm; .external();\nIion; .external();\n"
              "diff_w = ghost - w;\nIion = w;",
              "undefined variable 'ghost'");
}

TEST(Sema, CyclicIntermediatesRejected) {
  expectError("Vm; .external();\nIion; .external();\n"
              "a = b + 1.0;\nb = a + 1.0;\ndiff_w = a - w;\nIion = w;",
              "cyclic");
}

TEST(Sema, ParamMustBeConstant) {
  expectError("Vm; .external();\n"
              "group{ g = Vm; }.param();\ndiff_w = -w;",
              "not a constant");
}

TEST(Sema, ParamsMayReferenceParams) {
  ModelInfo Info = analyzeOk(
      "Vm; .external();\nIion; .external();\n"
      "group{ a = 2.0; b = a*3.0; }.param();\n"
      "diff_w = -b*w;\nw_init = 1;\nIion = w;");
  EXPECT_DOUBLE_EQ(Info.Params[1].DefaultValue, 6.0);
}

TEST(Sema, InitMayReferenceParams) {
  ModelInfo Info = analyzeOk(
      "Vm; .external();\nIion; .external();\n"
      "group{ w0 = 0.75; }.param();\n"
      "diff_w = -w;\nw_init = w0;\nIion = w;");
  EXPECT_DOUBLE_EQ(Info.StateVars[0].Init, 0.75);
}

TEST(Sema, DiffOnExternalRejected) {
  expectError("Vm; .external();\ndiff_Vm = 1.0;", "cannot have a");
}

TEST(Sema, DirectAssignmentToStateRejected) {
  expectError("diff_w = -w;\nw = 2.0;", "cannot be assigned");
}

TEST(Sema, MissingInitWarnsAndDefaultsToZero) {
  DiagnosticEngine Diags;
  auto Info = compileModelInfo(
      "t", "Vm; .external();\nIion; .external();\ndiff_w = -w;\nIion = w;",
      Diags);
  ASSERT_TRUE(Info.has_value());
  EXPECT_DOUBLE_EQ(Info->StateVars[0].Init, 0.0);
  bool Warned = false;
  for (const Diagnostic &D : Diags.diagnostics())
    Warned |= D.Severity == DiagSeverity::Warning &&
              D.Message.find("no '_init'") != std::string::npos;
  EXPECT_TRUE(Warned);
}

TEST(Sema, LutSpecValidated) {
  ModelInfo Info = analyzeOk(
      "Vm; .external(); .lookup(-100, 100, 0.05);\nIion; .external();\n"
      "diff_w = exp(Vm/10.0) - w;\nw_init = 0;\nIion = w;");
  ASSERT_EQ(Info.Luts.size(), 1u);
  EXPECT_EQ(Info.Luts[0].VarName, "Vm");
  EXPECT_EQ(Info.Luts[0].numRows(), 4001);
}

TEST(Sema, LutOnIntermediateRejected) {
  expectError("Vm; .external();\nIion; .external();\n"
              "a; .lookup(0, 1, 0.1);\na = Vm*2.0;\ndiff_w = a - w;\n"
              "Iion = w;",
              "must be an external or a state");
}

TEST(Sema, InvalidLutRangeRejected) {
  expectError("Vm; .external(); .lookup(100, -100, 0.05);\n"
              "Iion; .external();\ndiff_w = -w;\nIion = w;",
              "invalid '.lookup()'");
}

TEST(Sema, StateVarOrderFollowsFirstMention) {
  ModelInfo Info = analyzeOk(
      "Vm; .external();\nIion; .external();\n"
      "diff_b = -b;\nb_init = 1;\ndiff_a = -a;\na_init = 1;\nIion = a + b;");
  ASSERT_EQ(Info.StateVars.size(), 2u);
  EXPECT_EQ(Info.StateVars[0].Name, "b");
  EXPECT_EQ(Info.StateVars[1].Name, "a");
}

TEST(Sema, CountDistinctOpsIsStable) {
  ModelInfo Info = analyzeOk(MiniModel);
  size_t N = Info.countDistinctOps();
  EXPECT_GT(N, 0u);
  EXPECT_EQ(N, Info.countDistinctOps());
}

TEST(ConstEval, EvaluatesEverything) {
  DiagnosticEngine Diags;
  ParsedModel PM;
  // Direct expression checks through evalExpr.
  auto Num = Expr::makeNumber(2.0);
  EXPECT_EQ(evalConstExpr(*Num), 2.0);
  auto Sum = Expr::makeBinary(BinaryOp::Add, Expr::makeNumber(2),
                              Expr::makeNumber(3));
  EXPECT_EQ(evalConstExpr(*Sum), 5.0);
  auto Tern = Expr::makeTernary(
      Expr::makeBinary(BinaryOp::Lt, Expr::makeNumber(1),
                       Expr::makeNumber(2)),
      Expr::makeNumber(10), Expr::makeNumber(20));
  EXPECT_EQ(evalConstExpr(*Tern), 10.0);
  auto Call = Expr::makeCall(BuiltinFn::Cube, {Expr::makeNumber(3)});
  EXPECT_EQ(evalConstExpr(*Call), 27.0);
  auto Var = Expr::makeVarRef("x");
  EXPECT_FALSE(evalConstExpr(*Var).has_value());
  EXPECT_EQ(evalExpr(*Var,
                     [](std::string_view) -> std::optional<double> {
                       return 7.0;
                     }),
            7.0);
}

} // namespace
