//===- EngineTests.cpp - exec/Engine unit tests --------------------------------===//

#include "easyml/Sema.h"
#include "exec/Backend.h"
#include "exec/CompiledModel.h"

#include <cmath>
#include <gtest/gtest.h>

using namespace limpet;
using namespace limpet::codegen;
using namespace limpet::exec;

namespace {

constexpr const char TestModel[] = R"(
Vm; .external(); .nodal();
Iion; .external();
group{ g = 0.5; E = -80.0; }.param();
Vm_init = -80.0;
rate = exp(Vm/30.0)/(1.0+exp(Vm/15.0));
diff_w = rate*(1.0-w) - 0.3*w;
w_init = 0.25;
diff_c = 0.01*(1.0 - c) - 0.001*Vm;
c_init = 1.0;
Iion = g*(Vm - E)*w + c*0.1;
)";

easyml::ModelInfo testInfo() {
  DiagnosticEngine Diags;
  auto Info = easyml::compileModelInfo("test", TestModel, Diags);
  EXPECT_TRUE(Info.has_value()) << Diags.str();
  return *Info;
}

/// Runs \p Steps compute steps over \p Cells cells with varying Vm per
/// cell; returns the final state+ext digest.
std::vector<double> runModel(const CompiledModel &M, int64_t Cells,
                             int Steps) {
  std::vector<double> State(M.stateArraySize(Cells));
  M.initializeState(State.data(), Cells);
  std::vector<double> Vm(Cells), Iion(Cells, 0.0);
  for (int64_t C = 0; C != Cells; ++C)
    Vm[C] = -90.0 + double(C % 37) * 4.0;
  std::vector<double> Params = M.defaultParams();

  KernelArgs Args;
  Args.State = State.data();
  Args.Exts = {Vm.data(), Iion.data()};
  Args.Params = Params.data();
  Args.Start = 0;
  Args.End = Cells;
  Args.NumCells = Cells;
  Args.Dt = 0.02;
  for (int I = 0; I != Steps; ++I) {
    Args.T = I * 0.02;
    M.computeStep(Args);
  }

  std::vector<double> Out;
  for (int64_t C = 0; C != Cells; ++C) {
    Out.push_back(M.readState(State.data(), C, 0, Cells));
    Out.push_back(M.readState(State.data(), C, 1, Cells));
    Out.push_back(Iion[C]);
  }
  return Out;
}

void expectClose(const std::vector<double> &A, const std::vector<double> &B,
                 double Tol, const std::string &What) {
  ASSERT_EQ(A.size(), B.size());
  for (size_t I = 0; I != A.size(); ++I)
    EXPECT_NEAR(A[I], B[I], Tol * std::max(1.0, std::fabs(A[I])))
        << What << " element " << I;
}

struct WidthLayoutCase {
  unsigned Width;
  StateLayout Layout;
};

class EngineEquivalence
    : public ::testing::TestWithParam<WidthLayoutCase> {};

TEST_P(EngineEquivalence, MatchesScalarBaseline) {
  auto [Width, Layout] = GetParam();
  easyml::ModelInfo Info = testInfo();

  auto Base = CompiledModel::compile(Info, EngineConfig::baseline());
  ASSERT_TRUE(Base.has_value());

  EngineConfig Cfg;
  Cfg.Width = Width;
  Cfg.Layout = Layout;
  Cfg.FastMath = true;
  auto Vec = CompiledModel::compile(Info, Cfg);
  ASSERT_TRUE(Vec.has_value());

  // 101 cells: not divisible by any width, exercising the epilogue.
  auto A = runModel(*Base, 101, 50);
  auto B = runModel(*Vec, 101, 50);
  // FastMath differs from libm by ~1e-15 relative per call.
  expectClose(A, B, 1e-11, engineConfigName(Cfg));
}

INSTANTIATE_TEST_SUITE_P(
    AllWidthLayoutCombinations, EngineEquivalence,
    ::testing::Values(WidthLayoutCase{2, StateLayout::AoS},
                      WidthLayoutCase{4, StateLayout::AoS},
                      WidthLayoutCase{8, StateLayout::AoS},
                      WidthLayoutCase{2, StateLayout::SoA},
                      WidthLayoutCase{4, StateLayout::SoA},
                      WidthLayoutCase{8, StateLayout::SoA},
                      WidthLayoutCase{2, StateLayout::AoSoA},
                      WidthLayoutCase{4, StateLayout::AoSoA},
                      WidthLayoutCase{8, StateLayout::AoSoA}));

TEST(Engine, LibmVectorEngineBitMatchesScalar) {
  // With FastMath off both engines call libm: results must be identical.
  easyml::ModelInfo Info = testInfo();
  auto Base = CompiledModel::compile(Info, EngineConfig::baseline());
  EngineConfig Cfg;
  Cfg.Width = 8;
  Cfg.Layout = StateLayout::SoA;
  Cfg.FastMath = false;
  auto Vec = CompiledModel::compile(Info, Cfg);
  auto A = runModel(*Base, 64, 25);
  auto B = runModel(*Vec, 64, 25);
  ASSERT_EQ(A.size(), B.size());
  for (size_t I = 0; I != A.size(); ++I)
    EXPECT_EQ(A[I], B[I]) << I;
}

TEST(Engine, ChunkedExecutionMatchesWholeRange) {
  // Running the kernel over split [start, end) chunks must equal a single
  // full-range invocation (the threading contract).
  easyml::ModelInfo Info = testInfo();
  auto M = CompiledModel::compile(Info, EngineConfig::limpetMLIR(8));
  ASSERT_TRUE(M.has_value());

  const int64_t Cells = 96;
  auto RunChunked = [&](std::vector<int64_t> Splits) {
    std::vector<double> State(M->stateArraySize(Cells));
    M->initializeState(State.data(), Cells);
    std::vector<double> Vm(Cells, -40.0), Iion(Cells, 0.0);
    std::vector<double> Params = M->defaultParams();
    KernelArgs Args;
    Args.State = State.data();
    Args.Exts = {Vm.data(), Iion.data()};
    Args.Params = Params.data();
    Args.NumCells = Cells;
    Args.Dt = 0.02;
    Args.T = 0;
    Splits.insert(Splits.begin(), 0);
    Splits.push_back(Cells);
    for (size_t I = 0; I + 1 < Splits.size(); ++I) {
      Args.Start = Splits[I];
      Args.End = Splits[I + 1];
      M->computeStep(Args);
    }
    double Sum = 0;
    for (int64_t C = 0; C != Cells; ++C)
      Sum += M->readState(State.data(), C, 0, Cells) + Iion[C];
    return Sum;
  };

  double Whole = RunChunked({});
  double Halves = RunChunked({48});
  double Thirds = RunChunked({32, 64});
  EXPECT_DOUBLE_EQ(Whole, Halves);
  EXPECT_DOUBLE_EQ(Whole, Thirds);
}

TEST(Engine, SupportedWidths) {
  // The specialized burns are always registered, on every host.
  EXPECT_TRUE(isSupportedWidth(1));
  EXPECT_TRUE(isSupportedWidth(2));
  EXPECT_TRUE(isSupportedWidth(4));
  EXPECT_TRUE(isSupportedWidth(8));
  EXPECT_FALSE(isSupportedWidth(3));
  // Width 16 is runtime-width only and host-dependent (registered when
  // the probed ISA has vectors wide enough to make it plausible); the
  // answer must agree with the registry either way.
  EXPECT_EQ(isSupportedWidth(16),
            BackendRegistry::global().supportsWidth(16));
}

TEST(Engine, RejectsAoSoAWithScalarEngine) {
  easyml::ModelInfo Info = testInfo();
  EngineConfig Cfg;
  Cfg.Width = 1;
  Cfg.Layout = StateLayout::AoSoA;
  std::string Error;
  auto M = CompiledModel::compile(Info, Cfg, &Error);
  EXPECT_FALSE(M.has_value());
  EXPECT_NE(Error.find("AoSoA"), std::string::npos);
}

TEST(Engine, RejectsUnsupportedWidth) {
  easyml::ModelInfo Info = testInfo();
  EngineConfig Cfg;
  Cfg.Width = 3;
  std::string Error;
  auto M = CompiledModel::compile(Info, Cfg, &Error);
  EXPECT_FALSE(M.has_value());
  EXPECT_NE(Error.find("width"), std::string::npos);
}

TEST(Engine, SingleCellPopulationWorksOnAllWidths) {
  // End < W exercises the pure-epilogue path.
  easyml::ModelInfo Info = testInfo();
  auto Base = CompiledModel::compile(Info, EngineConfig::baseline());
  auto A = runModel(*Base, 1, 20);
  for (unsigned W : {2u, 4u, 8u}) {
    auto Vec = CompiledModel::compile(Info, EngineConfig::limpetMLIR(W));
    auto B = runModel(*Vec, 1, 20);
    expectClose(A, B, 1e-11, "W=" + std::to_string(W));
  }
}

} // namespace
