//===- MultimodelTests.cpp - parent/offspring composition tests ----------------===//

#include "easyml/Sema.h"
#include "sim/Multimodel.h"

#include <cmath>
#include <gtest/gtest.h>

using namespace limpet;
using namespace limpet::exec;
using namespace limpet::sim;

namespace {

// Parent: simple excitable membrane with one recovery variable.
constexpr const char ParentSrc[] = R"(
Vm; .external(); .nodal();
Iion; .external(); .nodal();
Vm_init = -80.0;
group{ g = 0.3; E = -80.0; }.param();
diff_w = 0.05*((Vm - E) - 4.0*w);
w_init = 0.0;
Iion = g*(Vm - E) + 0.1*w;
)";

// Plugin: stretch-activated channel reading Vm and accumulating onto the
// shared Iion (the openCARP plugin idiom `Iion = Iion + ...`).
constexpr const char PluginSrc[] = R"(
Vm; .external(); .nodal();
Iion; .external(); .nodal();
group{ g_sac = 0.12; E_sac = -10.0; }.param();
diff_s = 0.02*(1.0/(1.0+exp(-(Vm+50.0)/8.0)) - s);
s_init = 0.0;
Iion = Iion + g_sac*s*(Vm - E_sac);
)";

// Plugin reading a *parent state variable* through a binding: "w_parent"
// is an external here, gathered from the parent's state each step.
constexpr const char ReaderSrc[] = R"(
Vm; .external(); .nodal();
Iion; .external(); .nodal();
w_parent; .external(); .nodal();
group{ k = 0.2; }.param();
diff_mirror = 10.0*(w_parent - mirror);
mirror_init = 0.0;
Iion = Iion + k*w_parent;
)";

// Plugin that *writes* a parent state variable (offspring modifying the
// parent): doubles the parent's w each step.
constexpr const char WriterSrc[] = R"(
Vm; .external(); .nodal();
Iion; .external(); .nodal();
w_parent; .external(); .nodal();
diff_dummy = 0.0;
dummy_init = 0.0;
w_parent = w_parent*2.0;
Iion = Iion + 0.0;
)";

CompiledModel compileSrc(const char *Name, const char *Src,
                         EngineConfig Cfg) {
  DiagnosticEngine Diags;
  auto Info = easyml::compileModelInfo(Name, Src, Diags);
  EXPECT_TRUE(Info.has_value()) << Diags.str();
  auto M = CompiledModel::compile(*Info, Cfg);
  EXPECT_TRUE(M.has_value());
  return std::move(*M);
}

SimOptions smallOpts() {
  SimOptions Opts;
  Opts.NumCells = 37; // odd: exercises vector epilogues
  Opts.NumSteps = 200;
  Opts.StimStrength = 20.0;
  return Opts;
}

TEST(Multimodel, ParentAloneMatchesSimulator) {
  CompiledModel Parent = compileSrc("p", ParentSrc, EngineConfig::baseline());
  SimOptions Opts = smallOpts();
  MultimodelSimulator Multi(Parent, Opts);
  Simulator Single(Parent, Opts);
  Multi.run();
  Single.run();
  for (int64_t C = 0; C != Opts.NumCells; ++C) {
    EXPECT_DOUBLE_EQ(Multi.vm(C), Single.vm(C)) << C;
    EXPECT_DOUBLE_EQ(Multi.parentState(C, 0), Single.stateOf(C, 0)) << C;
  }
}

TEST(Multimodel, PluginAccumulatesOntoSharedIion) {
  CompiledModel Parent = compileSrc("p", ParentSrc, EngineConfig::baseline());
  CompiledModel Plugin = compileSrc("sac", PluginSrc,
                                    EngineConfig::baseline());
  SimOptions Opts = smallOpts();

  MultimodelSimulator Without(Parent, Opts);
  MultimodelSimulator With(Parent, Opts);
  With.addPlugin(Plugin, {});
  Without.run();
  With.run();

  // The plugin current changes the trajectory.
  EXPECT_NE(With.vm(0), Without.vm(0));
  // And the plugin's own gate evolved.
  EXPECT_NE(With.pluginState(0, 0, 0), 0.0);
}

TEST(Multimodel, PluginSeesParentStateThroughBinding) {
  CompiledModel Parent = compileSrc("p", ParentSrc, EngineConfig::baseline());
  CompiledModel Reader = compileSrc("r", ReaderSrc, EngineConfig::baseline());
  SimOptions Opts = smallOpts();
  MultimodelSimulator Multi(Parent, Opts);
  Multi.addPlugin(Reader, {{"w_parent", "w", /*Writable=*/false}});
  Multi.run();

  // The mirror variable relaxes toward the parent's w: after 2 ms of
  // tau=0.1ms relaxation they are close.
  double W = Multi.parentState(0, 0);
  double Mirror = Multi.pluginState(0, 0, 0);
  EXPECT_GT(std::fabs(W), 0.0);
  EXPECT_NEAR(Mirror, W, std::fabs(W) * 0.2 + 1e-9);
}

TEST(Multimodel, UnboundExternalFallsBackToLocalStorage) {
  // Without the binding, w_parent falls through to the plugin's local
  // array (initialized to its _init, here absent -> 0): the mirror stays
  // at zero. This is the paper's conditional-access fallback.
  CompiledModel Parent = compileSrc("p", ParentSrc, EngineConfig::baseline());
  CompiledModel Reader = compileSrc("r", ReaderSrc, EngineConfig::baseline());
  SimOptions Opts = smallOpts();
  MultimodelSimulator Multi(Parent, Opts);
  Multi.addPlugin(Reader, {});
  Multi.run();
  EXPECT_DOUBLE_EQ(Multi.pluginState(0, 0, 0), 0.0);
}

TEST(Multimodel, WritableBindingModifiesParentState) {
  CompiledModel Parent = compileSrc("p", ParentSrc, EngineConfig::baseline());
  CompiledModel Writer = compileSrc("wr", WriterSrc,
                                    EngineConfig::baseline());
  SimOptions Opts = smallOpts();
  Opts.NumSteps = 5;
  Opts.StimStrength = 0.0;

  MultimodelSimulator Plain(Parent, Opts);
  MultimodelSimulator Modified(Parent, Opts);
  Modified.addPlugin(Writer, {{"w_parent", "w", /*Writable=*/true}});
  Plain.run();
  Modified.run();
  // At rest (Vm == E) the parent's w stays 0, doubling included; depolarize
  // a cell first to make w nonzero, then compare a single step.
  SimOptions Opts2 = smallOpts();
  Opts2.NumSteps = 300; // 3 ms: past the 1 ms stimulus onset
  Opts2.StimStrength = 30.0;
  MultimodelSimulator P2(Parent, Opts2);
  MultimodelSimulator M2(Parent, Opts2);
  M2.addPlugin(Writer, {{"w_parent", "w", /*Writable=*/true}});
  P2.run();
  M2.run();
  EXPECT_NE(M2.parentState(0, 0), P2.parentState(0, 0));
}

TEST(Multimodel, WorksWithVectorEngines) {
  CompiledModel Parent = compileSrc("p", ParentSrc,
                                    EngineConfig::limpetMLIR(8));
  CompiledModel Plugin = compileSrc("sac", PluginSrc,
                                    EngineConfig::limpetMLIR(4));
  CompiledModel ParentS = compileSrc("p", ParentSrc,
                                     EngineConfig::baseline());
  CompiledModel PluginS = compileSrc("sac", PluginSrc,
                                     EngineConfig::baseline());
  SimOptions Opts = smallOpts();

  MultimodelSimulator Vec(Parent, Opts);
  Vec.addPlugin(Plugin, {});
  MultimodelSimulator Ref(ParentS, Opts);
  Ref.addPlugin(PluginS, {});
  Vec.run();
  Ref.run();
  for (int64_t C = 0; C != Opts.NumCells; ++C)
    EXPECT_NEAR(Vec.vm(C), Ref.vm(C),
                1e-9 * std::max(1.0, std::fabs(Ref.vm(C))))
        << C;
}

TEST(Multimodel, MultiplePluginsCompose) {
  CompiledModel Parent = compileSrc("p", ParentSrc, EngineConfig::baseline());
  CompiledModel Plugin = compileSrc("sac", PluginSrc,
                                    EngineConfig::baseline());
  CompiledModel Reader = compileSrc("r", ReaderSrc, EngineConfig::baseline());
  SimOptions Opts = smallOpts();
  MultimodelSimulator Multi(Parent, Opts);
  Multi.addPlugin(Plugin, {});
  Multi.addPlugin(Reader, {{"w_parent", "w", false}});
  Multi.run();
  EXPECT_TRUE(std::isfinite(Multi.vm(0)));
  EXPECT_NE(Multi.pluginState(0, 0, 0), 0.0);
  EXPECT_NE(Multi.pluginState(1, 0, 0), 0.0);
}

} // namespace
