//===- StateBufferTests.cpp - sim/StateBuffer unit tests ------------------===//

#include "easyml/Sema.h"
#include "models/Registry.h"
#include "sim/Scheduler.h"
#include "sim/StateBuffer.h"

#include <cmath>
#include <gtest/gtest.h>

using namespace limpet;
using namespace limpet::codegen;
using namespace limpet::exec;
using namespace limpet::sim;

namespace {

std::optional<CompiledModel> compileByName(const char *Name,
                                           EngineConfig Cfg) {
  const models::ModelEntry *M = models::findModel(Name);
  EXPECT_NE(M, nullptr);
  DiagnosticEngine Diags;
  auto Info = easyml::compileModelInfo(M->Name, M->Source, Diags);
  EXPECT_TRUE(Info.has_value()) << Diags.str();
  return CompiledModel::compile(*Info, Cfg);
}

/// A unique, order-revealing value per (cell, sv).
double tag(int64_t Cell, unsigned Sv) {
  return double(Cell) * 100.0 + double(Sv) + 0.25;
}

void fillTagged(StateBuffer &Buf) {
  for (int64_t C = 0; C != Buf.numCells(); ++C)
    for (unsigned Sv = 0; Sv != Buf.numSv(); ++Sv)
      Buf.writeState(C, Sv, tag(C, Sv));
  for (size_t J = 0; J != Buf.numExternals(); ++J)
    for (int64_t C = 0; C != Buf.numCells(); ++C)
      Buf.writeExt(J, C, -tag(C, unsigned(J)));
}

void expectTagged(const StateBuffer &Buf, const char *What) {
  for (int64_t C = 0; C != Buf.numCells(); ++C)
    for (unsigned Sv = 0; Sv != Buf.numSv(); ++Sv)
      EXPECT_DOUBLE_EQ(Buf.readState(C, Sv), tag(C, Sv))
          << What << " cell " << C << " sv " << Sv;
}

TEST(StateBuffer, ShapesFollowModelConfig) {
  auto M = compileByName("HodgkinHuxley", EngineConfig::limpetMLIR(4));
  StateBuffer Buf(*M, 10);
  EXPECT_EQ(Buf.layout(), StateLayout::AoSoA);
  EXPECT_EQ(Buf.blockWidth(), 4u);
  EXPECT_EQ(Buf.numCells(), 10);
  EXPECT_EQ(Buf.paddedCells(), 12); // rounded up to whole blocks
  EXPECT_EQ(Buf.stateSize(), size_t(12) * Buf.numSv());

  auto Base = compileByName("HodgkinHuxley", EngineConfig::baseline());
  StateBuffer Flat(*Base, 10);
  EXPECT_EQ(Flat.layout(), StateLayout::AoS);
  EXPECT_EQ(Flat.paddedCells(), 10);
}

TEST(StateBuffer, InitializedToModelInits) {
  auto M = compileByName("HodgkinHuxley", EngineConfig::limpetMLIR(8));
  StateBuffer Buf(*M, 13);
  // m/h/n gate inits (see SimulatorTests), uniform across cells — and
  // across the AoSoA pad lanes, so whole-array health scans stay clean.
  EXPECT_NEAR(Buf.readState(0, 0), 0.0529, 1e-12);
  EXPECT_NEAR(Buf.readState(12, 1), 0.5961, 1e-12);
  for (int64_t C = 0; C != Buf.paddedCells(); ++C)
    for (unsigned Sv = 0; Sv != Buf.numSv(); ++Sv)
      EXPECT_TRUE(std::isfinite(
          Buf.state()[size_t(stateIndex(Buf.layout(), C, Sv, Buf.numSv(),
                                        Buf.numCells(), Buf.blockWidth()))]));
}

struct RepackCase {
  StateLayout Layout;
  unsigned Width;
};

class StateBufferRepack
    : public ::testing::TestWithParam<std::tuple<RepackCase, int64_t>> {};

TEST_P(StateBufferRepack, RoundTripPreservesEveryCell) {
  auto [To, Cells] = GetParam();
  auto M = compileByName("HodgkinHuxley", EngineConfig::baseline());
  StateBuffer Buf(*M, Cells);
  fillTagged(Buf);
  double Digest = Buf.checksum();

  Buf.repack(To.Layout, To.Width);
  EXPECT_EQ(Buf.layout(), To.Layout);
  expectTagged(Buf, "after repack");
  // The digest walks (cell, sv) logically, so it must not see the layout.
  EXPECT_DOUBLE_EQ(Buf.checksum(), Digest);

  Buf.repack(StateLayout::AoS, 1);
  expectTagged(Buf, "after round trip");
  EXPECT_DOUBLE_EQ(Buf.checksum(), Digest);
}

INSTANTIATE_TEST_SUITE_P(
    LayoutsWidthsAndRaggedTails, StateBufferRepack,
    ::testing::Combine(
        ::testing::Values(RepackCase{StateLayout::SoA, 1},
                          RepackCase{StateLayout::AoSoA, 2},
                          RepackCase{StateLayout::AoSoA, 4},
                          RepackCase{StateLayout::AoSoA, 8}),
        // 33 and 7 leave ragged NumCells % W tails for every width.
        ::testing::Values(int64_t(32), int64_t(33), int64_t(7))));

TEST(StateBuffer, RepackResetsAoSoAPadLanesToInits) {
  auto M = compileByName("HodgkinHuxley", EngineConfig::baseline());
  StateBuffer Buf(*M, 5);
  fillTagged(Buf);
  Buf.repack(StateLayout::AoSoA, 4); // pads cells 5..7
  StateBuffer Fresh(*compileByName("HodgkinHuxley",
                                   EngineConfig::limpetMLIR(4)),
                    5);
  for (int64_t Pad = 5; Pad != 8; ++Pad)
    for (unsigned Sv = 0; Sv != Buf.numSv(); ++Sv) {
      size_t I = size_t(stateIndex(StateLayout::AoSoA, Pad, Sv, Buf.numSv(),
                                   5, 4));
      EXPECT_DOUBLE_EQ(Buf.state()[I], Fresh.state()[I]) << Pad;
    }
}

TEST(StateBuffer, GatherScatterRoundTrip) {
  auto M = compileByName("HodgkinHuxley", EngineConfig::limpetMLIR(4));
  StateBuffer Buf(*M, 9);
  fillTagged(Buf);
  std::vector<double> Sv(Buf.numSv()), Ext(Buf.numExternals());
  Buf.gatherCell(6, Sv.data(), Ext.data());
  for (unsigned S = 0; S != Buf.numSv(); ++S)
    EXPECT_DOUBLE_EQ(Sv[S], tag(6, S));
  for (size_t J = 0; J != Buf.numExternals(); ++J)
    EXPECT_DOUBLE_EQ(Ext[J], -tag(6, unsigned(J)));

  for (double &V : Sv)
    V += 1000.0;
  Buf.scatterCell(6, Sv.data(), Ext.data());
  EXPECT_DOUBLE_EQ(Buf.readState(6, 2), tag(6, 2) + 1000.0);
  EXPECT_DOUBLE_EQ(Buf.readState(5, 2), tag(5, 2)); // neighbours untouched
  EXPECT_DOUBLE_EQ(Buf.readState(7, 2), tag(7, 2));
}

TEST(StateBuffer, SnapshotSaveRestore) {
  auto M = compileByName("HodgkinHuxley", EngineConfig::limpetMLIR(2));
  StateBuffer Buf(*M, 11);
  fillTagged(Buf);
  const double *StatePtr = Buf.state();

  StateBuffer::Snapshot Snap;
  Buf.save(Snap);
  EXPECT_DOUBLE_EQ(Buf.snapshotState(Snap, 10, 1), tag(10, 1));

  Buf.writeState(10, 1, 9e9);
  Buf.writeExt(0, 3, 9e9);
  Buf.restore(Snap);
  expectTagged(Buf, "after restore");
  EXPECT_DOUBLE_EQ(Buf.readExt(0, 3), -tag(3, 0));
  // Restore happens in place: kernel stages keep their pointers.
  EXPECT_EQ(Buf.state(), StatePtr);
}

TEST(StateBuffer, ShardedFirstTouchInitMatchesSerial) {
  auto M = compileByName("Courtemanche", EngineConfig::limpetMLIR(4));
  Scheduler Sched(131, 4, 4);
  ASSERT_GT(Sched.numShards(), 1u);
  StateBuffer Sharded(*M, 131, &Sched);
  StateBuffer Serial(*M, 131);
  ASSERT_EQ(Sharded.stateSize(), Serial.stateSize());
  for (size_t I = 0; I != Serial.stateSize(); ++I)
    EXPECT_DOUBLE_EQ(Sharded.state()[I], Serial.state()[I]) << I;
  for (size_t J = 0; J != Serial.numExternals(); ++J)
    for (int64_t C = 0; C != 131; ++C)
      EXPECT_DOUBLE_EQ(Sharded.readExt(J, C), Serial.readExt(J, C));
}

TEST(StateBuffer, IndexMatchesCanonicalFormula) {
  auto M = compileByName("HodgkinHuxley", EngineConfig::limpetMLIR(4));
  StateBuffer Buf(*M, 10);
  for (int64_t C = 0; C != 10; ++C)
    for (unsigned Sv = 0; Sv != Buf.numSv(); ++Sv)
      EXPECT_EQ(Buf.index(C, Sv),
                stateIndex(StateLayout::AoSoA, C, Sv, Buf.numSv(), 10, 4));
}

} // namespace
