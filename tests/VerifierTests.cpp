//===- VerifierTests.cpp - ir/Verifier unit tests ---------------------------===//

#include "support/Casting.h"
#include "dialects/Dialects.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

using namespace limpet;
using namespace limpet::ir;

namespace {

/// Builds a minimal valid function: constants + return.
std::unique_ptr<Operation> makeTrivialFunc(Context &Ctx) {
  auto Func = makeFunction(Ctx, "f", {Ctx.memref(), Ctx.i64()});
  OpBuilder B(Ctx);
  B.setInsertionPointToEnd(&funcBody(Func.get()));
  makeConstantF(B, 1.0);
  makeReturn(B);
  return Func;
}

TEST(Verifier, AcceptsTrivialFunction) {
  Context Ctx;
  auto Func = makeTrivialFunc(Ctx);
  EXPECT_TRUE(verifyFunction(Func.get()));
}

TEST(Verifier, RejectsMissingTerminator) {
  Context Ctx;
  auto Func = makeFunction(Ctx, "f", {});
  OpBuilder B(Ctx);
  B.setInsertionPointToEnd(&funcBody(Func.get()));
  makeConstantF(B, 1.0);
  VerifyResult R = verifyFunction(Func.get());
  EXPECT_FALSE(R);
  EXPECT_NE(R.Message.find("terminator"), std::string::npos);
}

TEST(Verifier, RejectsUseBeforeDef) {
  Context Ctx;
  auto Func = makeFunction(Ctx, "f", {});
  Block &Body = funcBody(Func.get());
  OpBuilder B(Ctx);
  B.setInsertionPointToEnd(&Body);
  Value *C = makeConstantF(B, 1.0);
  Value *Sum = makeAddF(B, C, C);
  makeReturn(B);
  // Move the add before its operand's definition.
  Operation *SumOp = cast<OpResult>(Sum)->owner();
  Operation *ConstOp = cast<OpResult>(C)->owner();
  Body.remove(SumOp);
  Body.insertBefore(ConstOp, SumOp);
  VerifyResult R = verifyFunction(Func.get());
  EXPECT_FALSE(R);
  EXPECT_NE(R.Message.find("dominate"), std::string::npos);
}

TEST(Verifier, RejectsOperandCountMismatch) {
  Context Ctx;
  auto Func = makeFunction(Ctx, "f", {});
  OpBuilder B(Ctx);
  B.setInsertionPointToEnd(&funcBody(Func.get()));
  Value *C = makeConstantF(B, 1.0);
  // Hand-build an addf with one operand.
  Operation *Bad = B.create(OpCode::ArithAddF, {C}, {Ctx.f64()});
  (void)Bad;
  makeReturn(B);
  VerifyResult R = verifyFunction(Func.get());
  EXPECT_FALSE(R);
  EXPECT_NE(R.Message.find("operands"), std::string::npos);
}

TEST(Verifier, RejectsTypeMismatch) {
  Context Ctx;
  auto Func = makeFunction(Ctx, "f", {});
  OpBuilder B(Ctx);
  B.setInsertionPointToEnd(&funcBody(Func.get()));
  Value *F = makeConstantF(B, 1.0);
  Value *I = makeConstantI(B, 1);
  B.create(OpCode::ArithAddF, {F, I}, {Ctx.f64()});
  makeReturn(B);
  EXPECT_FALSE(verifyFunction(Func.get()));
}

TEST(Verifier, RejectsMissingConstantValue) {
  Context Ctx;
  auto Func = makeFunction(Ctx, "f", {});
  OpBuilder B(Ctx);
  B.setInsertionPointToEnd(&funcBody(Func.get()));
  B.create(OpCode::ArithConstantF, {}, {Ctx.f64()});
  makeReturn(B);
  VerifyResult R = verifyFunction(Func.get());
  EXPECT_FALSE(R);
  EXPECT_NE(R.Message.find("value"), std::string::npos);
}

TEST(Verifier, RejectsCmpWithoutPredicate) {
  Context Ctx;
  auto Func = makeFunction(Ctx, "f", {});
  OpBuilder B(Ctx);
  B.setInsertionPointToEnd(&funcBody(Func.get()));
  Value *C = makeConstantF(B, 1.0);
  B.create(OpCode::ArithCmpF, {C, C}, {Ctx.i1()});
  makeReturn(B);
  EXPECT_FALSE(verifyFunction(Func.get()));
}

TEST(Verifier, AcceptsForLoopWithYield) {
  Context Ctx;
  auto Func = makeFunction(Ctx, "f", {Ctx.i64(), Ctx.i64()});
  Block &Body = funcBody(Func.get());
  OpBuilder B(Ctx);
  B.setInsertionPointToEnd(&Body);
  Value *Step = makeConstantI(B, 1);
  Operation *For = makeFor(B, Body.argument(0), Body.argument(1), Step);
  OpBuilder BodyB(Ctx);
  BodyB.setInsertionPointToEnd(&forBody(For));
  makeYield(BodyB, {});
  makeReturn(B);
  EXPECT_TRUE(verifyFunction(Func.get())) << verifyFunction(Func.get()).Message;
}

TEST(Verifier, RejectsUnterminatedLoopBody) {
  Context Ctx;
  auto Func = makeFunction(Ctx, "f", {Ctx.i64(), Ctx.i64()});
  Block &Body = funcBody(Func.get());
  OpBuilder B(Ctx);
  B.setInsertionPointToEnd(&Body);
  Value *Step = makeConstantI(B, 1);
  makeFor(B, Body.argument(0), Body.argument(1), Step);
  makeReturn(B);
  EXPECT_FALSE(verifyFunction(Func.get()));
}

TEST(Verifier, LoopBodyValuesDoNotEscape) {
  Context Ctx;
  auto Func = makeFunction(Ctx, "f", {Ctx.i64(), Ctx.i64()});
  Block &Body = funcBody(Func.get());
  OpBuilder B(Ctx);
  B.setInsertionPointToEnd(&Body);
  Value *Step = makeConstantI(B, 1);
  Operation *For = makeFor(B, Body.argument(0), Body.argument(1), Step);
  OpBuilder BodyB(Ctx);
  BodyB.setInsertionPointToEnd(&forBody(For));
  Value *Inner = makeConstantF(BodyB, 5.0);
  makeYield(BodyB, {});
  // Use the loop-local value after the loop: must be rejected.
  makeAddF(B, Inner, Inner);
  makeReturn(B);
  EXPECT_FALSE(verifyFunction(Func.get()));
}

TEST(Verifier, AcceptsIfWithYields) {
  Context Ctx;
  auto Func = makeFunction(Ctx, "f", {});
  Block &Body = funcBody(Func.get());
  OpBuilder B(Ctx);
  B.setInsertionPointToEnd(&Body);
  Value *C = makeConstantF(B, 1.0);
  Value *Cond = makeCmpF(B, CmpPredicate::LT, C, C);
  Operation *If = makeIf(B, Cond, {Ctx.f64()});
  OpBuilder TB(Ctx), EB(Ctx);
  TB.setInsertionPointToEnd(&If->region(0).front());
  makeYield(TB, {C});
  EB.setInsertionPointToEnd(&If->region(1).front());
  makeYield(EB, {C});
  makeReturn(B);
  EXPECT_TRUE(verifyFunction(Func.get())) << verifyFunction(Func.get()).Message;
}

TEST(Verifier, RejectsIfYieldArityMismatch) {
  Context Ctx;
  auto Func = makeFunction(Ctx, "f", {});
  Block &Body = funcBody(Func.get());
  OpBuilder B(Ctx);
  B.setInsertionPointToEnd(&Body);
  Value *C = makeConstantF(B, 1.0);
  Value *Cond = makeCmpF(B, CmpPredicate::LT, C, C);
  Operation *If = makeIf(B, Cond, {Ctx.f64()});
  OpBuilder TB(Ctx), EB(Ctx);
  TB.setInsertionPointToEnd(&If->region(0).front());
  makeYield(TB, {C});
  EB.setInsertionPointToEnd(&If->region(1).front());
  makeYield(EB, {}); // wrong arity
  makeReturn(B);
  EXPECT_FALSE(verifyFunction(Func.get()));
}

TEST(Verifier, ModuleVerifiesAllFunctions) {
  Context Ctx;
  Module M;
  M.addFunction(makeTrivialFunc(Ctx));
  auto Bad = makeFunction(Ctx, "bad", {});
  OpBuilder B(Ctx);
  B.setInsertionPointToEnd(&funcBody(Bad.get()));
  makeConstantF(B, 1.0); // no terminator
  M.addFunction(std::move(Bad));
  EXPECT_FALSE(verifyModule(M));
}

} // namespace
