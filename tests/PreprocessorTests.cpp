//===- PreprocessorTests.cpp - easyml/Preprocessor unit tests ----------------===//

#include "easyml/Preprocessor.h"
#include "easyml/Sema.h"

#include <gtest/gtest.h>

using namespace limpet;
using namespace limpet::easyml;

namespace {

ExprPtr parseExprOf(std::string_view Rhs) {
  DiagnosticEngine Diags;
  std::string Src = "Vm; .external();\nIion; .external();\n"
                    "diff_w = -w;\nw_init = 0;\nx = " +
                    std::string(Rhs) + ";\nIion = x + w;";
  auto Info = compileModelInfo("t", Src, Diags);
  EXPECT_TRUE(Info.has_value()) << Diags.str();
  // x was inlined into Iion; return the intermediate's raw expression.
  return Info->Intermediates.at(0).Value;
}

TEST(Preprocessor, FoldsArithmetic) {
  ExprPtr E = foldConstants(parseExprOf("1.0 + 2.0*3.0"));
  EXPECT_EQ(printExpr(*E), "7");
}

TEST(Preprocessor, FoldsMathCalls) {
  ExprPtr E = foldConstants(parseExprOf("exp(0.0) + sqrt(4.0)"));
  EXPECT_EQ(printExpr(*E), "3");
}

TEST(Preprocessor, FoldsConditionsOverConstants) {
  ExprPtr E = foldConstants(parseExprOf("(1.0 < 2.0) ? 5.0 : 6.0"));
  EXPECT_EQ(printExpr(*E), "5");
}

TEST(Preprocessor, SelectsTernaryArmOnConstantCondition) {
  // The arms are runtime values, but a constant condition picks one.
  ExprPtr E = foldConstants(parseExprOf("(3.0 > 2.0) ? Vm : Vm*2.0"));
  EXPECT_EQ(printExpr(*E), "Vm");
}

TEST(Preprocessor, FoldsConstantSubtreesInsideRuntimeExpr) {
  ExprPtr E = foldConstants(parseExprOf("Vm * (2.0/4.0) + (1.0+1.0)"));
  EXPECT_EQ(printExpr(*E), "((Vm * 0.5) + 2)");
}

TEST(Preprocessor, LeavesRuntimeExprAlone) {
  ExprPtr Raw = parseExprOf("Vm + w");
  ExprPtr E = foldConstants(Raw);
  EXPECT_EQ(E, Raw); // shared, unchanged
}

TEST(Preprocessor, CountsFolds) {
  PreprocessorStats Stats;
  foldConstants(parseExprOf("1.0 + 2.0 + Vm"), &Stats);
  EXPECT_GE(Stats.FoldedNodes, 1u);
}

TEST(Preprocessor, RunsOverWholeModel) {
  DiagnosticEngine Diags;
  auto Info = compileModelInfo(
      "t",
      "Vm; .external();\nIion; .external();\n"
      "k = 2.0*3.0;\ndiff_w = k*Vm - w;\nw_init = 0;\nIion = w*(4.0-1.0);",
      Diags);
  ASSERT_TRUE(Info.has_value());
  PreprocessorStats Stats = preprocessModel(*Info);
  EXPECT_GE(Stats.FoldedNodes, 2u);
  EXPECT_EQ(printExpr(*Info->StateVars[0].Diff), "((6 * Vm) - w)");
}

TEST(Preprocessor, MemoizesSharedSubtrees) {
  // Build an expression with a physically shared constant subtree; the
  // folder must produce the same folded node for both occurrences.
  ExprPtr Shared = Expr::makeBinary(BinaryOp::Add, Expr::makeNumber(1),
                                    Expr::makeNumber(2));
  ExprPtr Root = Expr::makeBinary(BinaryOp::Mul, Shared, Shared);
  PreprocessorStats Stats;
  ExprPtr Folded = foldConstants(Root, &Stats);
  EXPECT_EQ(printExpr(*Folded), "9");
}

} // namespace
