//===- ModelSuiteTests.cpp - 43-model registry tests ----------------------------===//

#include "easyml/Sema.h"
#include "models/Registry.h"
#include "models/SyntheticModel.h"

#include <gtest/gtest.h>
#include <set>

using namespace limpet;
using namespace limpet::models;

namespace {

TEST(ModelRegistry, HasExactly43Models) {
  EXPECT_EQ(modelRegistry().size(), 43u);
}

TEST(ModelRegistry, ClassSplitMatchesPaper) {
  // Paper Sec. 4.1: 8 small, 22 medium, 13 large.
  EXPECT_EQ(countClass('S'), 8u);
  EXPECT_EQ(countClass('M'), 22u);
  EXPECT_EQ(countClass('L'), 13u);
}

TEST(ModelRegistry, NamesAreUnique) {
  std::set<std::string> Names;
  for (const ModelEntry &M : modelRegistry())
    EXPECT_TRUE(Names.insert(M.Name).second) << M.Name;
}

TEST(ModelRegistry, PaperHighlightedModelsPresent) {
  for (const char *Name :
       {"GrandiPanditVoigt", "OHara", "WangSobie", "Courtemanche",
        "Maleckar", "HodgkinHuxley", "DrouhardRoberge", "ISAC_Hu",
        "Plonsey", "Stress_Niederer", "Pathmanathan"})
    EXPECT_NE(findModel(Name), nullptr) << Name;
}

TEST(ModelRegistry, FindModelReturnsNullForUnknown) {
  EXPECT_EQ(findModel("NotAModel"), nullptr);
}

TEST(ModelRegistry, OrderedSmallMediumLarge) {
  char Prev = 'S';
  auto Rank = [](char C) { return C == 'S' ? 0 : C == 'M' ? 1 : 2; };
  for (const ModelEntry &M : modelRegistry()) {
    EXPECT_GE(Rank(M.SizeClass), Rank(Prev)) << M.Name;
    Prev = M.SizeClass;
  }
}

class ModelFrontend : public ::testing::TestWithParam<int> {};

TEST_P(ModelFrontend, ParsesAndAnalyzes) {
  const ModelEntry &M = modelRegistry()[size_t(GetParam())];
  DiagnosticEngine Diags;
  auto Info = easyml::compileModelInfo(M.Name, M.Source, Diags);
  ASSERT_TRUE(Info.has_value()) << M.Name << ":\n" << Diags.str();
  EXPECT_EQ(Diags.errorCount(), 0u) << M.Name;
  EXPECT_FALSE(Info->StateVars.empty()) << M.Name;
  // Every model exposes the Vm/Iion convention.
  EXPECT_GE(Info->externalIndex("Vm"), 0) << M.Name;
  EXPECT_GE(Info->externalIndex("Iion"), 0) << M.Name;
  EXPECT_TRUE(Info->Externals[size_t(Info->externalIndex("Iion"))]
                  .IsComputed)
      << M.Name;
}

INSTANTIATE_TEST_SUITE_P(All43, ModelFrontend, ::testing::Range(0, 43),
                         [](const ::testing::TestParamInfo<int> &I) {
                           return modelRegistry()[size_t(I.param)].Name;
                         });

TEST(ModelRegistry, SizeClassesTrackComplexity) {
  // Distinct model-op counts must grow small -> large on average.
  auto AvgOps = [](char Class) {
    double Sum = 0;
    size_t N = 0;
    for (const ModelEntry &M : modelRegistry()) {
      if (M.SizeClass != Class)
        continue;
      DiagnosticEngine Diags;
      auto Info = easyml::compileModelInfo(M.Name, M.Source, Diags);
      EXPECT_TRUE(Info.has_value());
      Sum += double(Info->countDistinctOps());
      ++N;
    }
    return Sum / double(N);
  };
  double S = AvgOps('S'), M = AvgOps('M'), L = AvgOps('L');
  EXPECT_LT(S, M);
  EXPECT_LT(M, L);
}

TEST(SyntheticGenerator, DeterministicInSeed) {
  SyntheticSpec Spec;
  Spec.Name = "X";
  Spec.Seed = 42;
  EXPECT_EQ(generateSyntheticEasyML(Spec), generateSyntheticEasyML(Spec));
  SyntheticSpec Other = Spec;
  Other.Seed = 43;
  EXPECT_NE(generateSyntheticEasyML(Spec), generateSyntheticEasyML(Other));
}

TEST(SyntheticGenerator, RespectsShapeParameters) {
  SyntheticSpec Spec;
  Spec.Name = "Shape";
  Spec.Seed = 7;
  Spec.NumGates = 3;
  Spec.NumPools = 2;
  Spec.NumMarkov = 1;
  Spec.NumRk2 = 1;
  Spec.NumRk4 = 1;
  Spec.NumCurrents = 4;
  DiagnosticEngine Diags;
  auto Info =
      easyml::compileModelInfo("Shape", generateSyntheticEasyML(Spec), Diags);
  ASSERT_TRUE(Info.has_value()) << Diags.str();
  // 3 gates + 2 pools + 1 markov + 1 rk2 + 1 rk4 = 8 state variables.
  EXPECT_EQ(Info->StateVars.size(), 8u);
  EXPECT_EQ(Info->Params.size(), 4u); // one conductance per current
  unsigned Markov = 0, Rk2 = 0, Rk4 = 0, RushLike = 0;
  for (const auto &SV : Info->StateVars) {
    Markov += SV.Method == easyml::IntegMethod::MarkovBE;
    Rk2 += SV.Method == easyml::IntegMethod::RK2;
    Rk4 += SV.Method == easyml::IntegMethod::RK4;
    RushLike += SV.Method == easyml::IntegMethod::RushLarsen ||
                SV.Method == easyml::IntegMethod::Sundnes;
  }
  EXPECT_EQ(Markov, 1u);
  EXPECT_EQ(Rk2, 1u);
  EXPECT_EQ(Rk4, 1u);
  EXPECT_EQ(RushLike, 3u);
}

TEST(SyntheticGenerator, LutFlagControlsMarkup) {
  SyntheticSpec Spec;
  Spec.Name = "L";
  Spec.UseLut = true;
  EXPECT_NE(generateSyntheticEasyML(Spec).find(".lookup("),
            std::string::npos);
  Spec.UseLut = false;
  EXPECT_EQ(generateSyntheticEasyML(Spec).find(".lookup("),
            std::string::npos);
}

TEST(ModelRegistry, ISACHuHasNoLutAndHeavyMath) {
  // The paper singles ISAC_Hu out: costly vectorized math, no LUT.
  const ModelEntry *M = findModel("ISAC_Hu");
  ASSERT_NE(M, nullptr);
  EXPECT_EQ(M->Source.find(".lookup("), std::string::npos);
  EXPECT_NE(M->Source.find("sinh("), std::string::npos);
}

} // namespace
