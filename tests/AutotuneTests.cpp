//===- AutotuneTests.cpp - compiler/Autotuner unit tests ------------------===//
//
// Covers the tuning-record wire format (round-trip, truncation at every
// prefix, bit flips, version skew), the key-invalidation rules, the
// backend registry probe for every named ISA, bit-identical exact-mode
// results across every selectable point, and deterministic selection
// under LIMPET_TUNE_FORCE.
//
//===----------------------------------------------------------------------===//

#include "compiler/Artifact.h"
#include "compiler/Autotuner.h"
#include "easyml/Sema.h"
#include "exec/Backend.h"
#include "exec/CompiledModel.h"
#include "sim/Simulator.h"
#include "support/CpuCaps.h"

#include <cstdlib>
#include <cstring>
#include <gtest/gtest.h>

using namespace limpet;
using namespace limpet::codegen;
using namespace limpet::compiler;

namespace {

// These tests reason about the in-process fallback chain, so pin the
// environment before anything memoizes it (the compile cache snapshots
// LIMPET_CACHE_DIR on first use, the registry LIMPET_VLA/LIMPET_CPU_CAPS).
const bool EnvCleared = [] {
  unsetenv("LIMPET_CACHE_DIR");
  unsetenv("LIMPET_TUNE_FORCE");
  unsetenv("LIMPET_CPU_CAPS");
  unsetenv("LIMPET_VLA");
  return true;
}();

constexpr const char TestModel[] = R"(
Vm; .external(); .nodal();
Iion; .external();
group{ g = 0.5; E = -80.0; }.param();
Vm_init = -80.0;
rate = exp(Vm/30.0)/(1.0+exp(Vm/15.0));
diff_w = rate*(1.0-w) - 0.3*w;
w_init = 0.25;
diff_c = 0.01*(1.0 - c) - 0.001*Vm;
c_init = 1.0;
Iion = g*(Vm - E)*w + c*0.1;
)";

easyml::ModelInfo testInfo() {
  DiagnosticEngine Diags;
  auto Info = easyml::compileModelInfo("test", TestModel, Diags);
  EXPECT_TRUE(Info.has_value()) << Diags.str();
  return *Info;
}

/// Restores (or unsets) an environment variable on scope exit.
class ScopedEnv {
public:
  ScopedEnv(const char *Name, const char *Value) : Name(Name) {
    setenv(Name, Value, 1);
  }
  ~ScopedEnv() { unsetenv(Name); }

private:
  const char *Name;
};

TuningRecord sampleRecord() {
  TuningRecord R;
  R.TuneKey = 0x0123456789abcdefULL;
  R.RegistryFingerprint = 0xfedcba9876543210ULL;
  R.ModelName = "HodgkinHuxley";
  R.Best = TunePoint{StateLayout::AoSoA, 8, exec::EngineTier::VM};
  R.BestRate = 1.25e7;
  R.Measurements = {{"aos/w1/vm", 3.0e6},
                    {"aosoa/w8/vm", 1.25e7},
                    {"soa/w4/native", 9.5e6}};
  return R;
}

TEST(TunePoint, NameRoundTrip) {
  for (StateLayout L : {StateLayout::AoS, StateLayout::SoA,
                        StateLayout::AoSoA})
    for (unsigned W : {1u, 2u, 4u, 8u, 16u})
      for (exec::EngineTier T :
           {exec::EngineTier::VM, exec::EngineTier::Native}) {
        TunePoint P{L, W, T};
        std::optional<TunePoint> Back = TunePoint::fromName(P.name());
        ASSERT_TRUE(Back.has_value()) << P.name();
        EXPECT_EQ(*Back, P) << P.name();
      }
}

TEST(TunePoint, FromNameRejectsGarbage) {
  for (const char *Bad :
       {"", "aosoa", "aosoa/w8", "aosoa/8/vm", "aosoa/w/vm", "aosoa/w0/vm",
        "aosoa/w8/jit", "blocked/w8/vm", "aosoa/w8/vm/extra", "aosoa/wx/vm",
        "aosoa/w99999/vm"})
    EXPECT_FALSE(TunePoint::fromName(Bad).has_value()) << Bad;
  // "vm/extra" parses the tier as "vm/extra": reject. But trailing junk
  // inside the width digits must also reject.
  EXPECT_FALSE(TunePoint::fromName("aos/w4x/vm").has_value());
}

TEST(TuningRecord, SerializeRoundTrip) {
  TuningRecord R = sampleRecord();
  std::string Bytes = R.serialize();
  std::string Error;
  std::optional<TuningRecord> Back = TuningRecord::deserialize(Bytes, &Error);
  ASSERT_TRUE(Back.has_value()) << Error;
  EXPECT_EQ(Back->TuneKey, R.TuneKey);
  EXPECT_EQ(Back->RegistryFingerprint, R.RegistryFingerprint);
  EXPECT_EQ(Back->ModelName, R.ModelName);
  EXPECT_EQ(Back->Best, R.Best);
  EXPECT_EQ(Back->BestRate, R.BestRate);
  ASSERT_EQ(Back->Measurements.size(), R.Measurements.size());
  for (size_t I = 0; I != R.Measurements.size(); ++I) {
    EXPECT_EQ(Back->Measurements[I].Point, R.Measurements[I].Point);
    EXPECT_EQ(Back->Measurements[I].CellStepsPerSec,
              R.Measurements[I].CellStepsPerSec);
  }
}

TEST(TuningRecord, TruncationAtEveryPrefixIsRecoverable) {
  std::string Bytes = sampleRecord().serialize();
  for (size_t Len = 0; Len != Bytes.size(); ++Len)
    EXPECT_FALSE(
        TuningRecord::deserialize(std::string_view(Bytes).substr(0, Len))
            .has_value())
        << "prefix of " << Len << " bytes parsed";
}

TEST(TuningRecord, EveryByteFlipIsDetected) {
  std::string Bytes = sampleRecord().serialize();
  for (size_t I = 0; I != Bytes.size(); ++I) {
    std::string Bad = Bytes;
    Bad[I] = char(Bad[I] ^ 0x5a);
    EXPECT_FALSE(TuningRecord::deserialize(Bad).has_value())
        << "flip at byte " << I << " parsed";
  }
}

TEST(TuningRecord, VersionSkewIsStale) {
  std::string Bytes = sampleRecord().serialize();
  // Patch the version field (bytes 4..8) and re-seal the checksum so only
  // the version mismatch can reject it.
  uint32_t Bumped = kTunerVersion + 1;
  std::memcpy(Bytes.data() + 4, &Bumped, 4);
  std::string_view Body(Bytes.data(), Bytes.size() - 8);
  uint64_t Sum = fnv1a64(Body);
  std::memcpy(Bytes.data() + Bytes.size() - 8, &Sum, 8);
  std::string Error;
  EXPECT_FALSE(TuningRecord::deserialize(Bytes, &Error).has_value());
  EXPECT_NE(Error.find("version"), std::string::npos) << Error;
}

TEST(TuneKey, InvalidationRules) {
  exec::EngineConfig Base = exec::EngineConfig::autoTuned();
  uint64_t Fp = 0x1111222233334444ULL;
  uint64_t K = tuneKey(TestModel, Base, false, Fp);

  // Stable: same inputs, same key.
  EXPECT_EQ(tuneKey(TestModel, Base, false, Fp), K);

  // The tuned axes are the record's output, never its key.
  exec::EngineConfig C = Base;
  C.Width = 8;
  C.Layout = StateLayout::SoA;
  EXPECT_EQ(tuneKey(TestModel, C, false, Fp), K);

  // Every non-tuned axis invalidates.
  C = Base;
  C.FastMath = !C.FastMath;
  EXPECT_NE(tuneKey(TestModel, C, false, Fp), K);
  C = Base;
  C.EnableLuts = !C.EnableLuts;
  EXPECT_NE(tuneKey(TestModel, C, false, Fp), K);
  C = Base;
  C.CubicLut = !C.CubicLut;
  EXPECT_NE(tuneKey(TestModel, C, false, Fp), K);
  C = Base;
  C.RunPasses = !C.RunPasses;
  EXPECT_NE(tuneKey(TestModel, C, false, Fp), K);
  C = Base;
  C.PassPipeline = "cse,dce";
  EXPECT_NE(tuneKey(TestModel, C, false, Fp), K);

  // So do the source, the native allowance and the registry fingerprint.
  EXPECT_NE(tuneKey("other source", Base, false, Fp), K);
  EXPECT_NE(tuneKey(TestModel, Base, true, Fp), K);
  EXPECT_NE(tuneKey(TestModel, Base, false, Fp + 1), K);
}

TEST(BackendRegistry, ProbesEveryNamedIsa) {
  for (const char *Isa :
       {"scalar", "sse2", "neon", "avx2", "avx512", "generic"}) {
    std::optional<support::CpuCaps> CapsOpt = support::cpuCapsFromName(Isa);
    ASSERT_TRUE(CapsOpt.has_value()) << Isa;
    const support::CpuCaps &Caps = *CapsOpt;
    exec::BackendRegistry Reg = exec::BackendRegistry::forCaps(Caps);
    // The specialized burns are the portable floor on every host.
    for (unsigned W : {1u, 2u, 4u, 8u})
      EXPECT_TRUE(Reg.supportsWidth(W)) << Isa << " w" << W;
    EXPECT_FALSE(Reg.supportsWidth(3)) << Isa;
    // The probe only widens the menu: runtime-width 16 appears exactly
    // where two full native vectors exceed the widest burn.
    EXPECT_EQ(Reg.supportsWidth(16), Caps.MaxLanesF64 * 2 > 8) << Isa;
    const exec::Backend *Scalar = Reg.find(1, false);
    ASSERT_NE(Scalar, nullptr) << Isa;
    EXPECT_FALSE(Scalar->vectorized()) << Isa;
  }
  // Machine classes with different menus must fingerprint differently.
  uint64_t FpScalar =
      exec::BackendRegistry::forCaps(*support::cpuCapsFromName("scalar"))
          .fingerprint();
  uint64_t FpAvx2 =
      exec::BackendRegistry::forCaps(*support::cpuCapsFromName("avx2"))
          .fingerprint();
  uint64_t FpAvx512 =
      exec::BackendRegistry::forCaps(*support::cpuCapsFromName("avx512"))
          .fingerprint();
  EXPECT_NE(FpScalar, FpAvx2);
  EXPECT_NE(FpAvx2, FpAvx512);
  EXPECT_NE(FpScalar, FpAvx512);
}

TEST(BackendRegistry, PreferVlaSwapsDispatchNotResults) {
  support::CpuCaps Caps = *support::cpuCapsFromName("avx2");
  exec::BackendRegistry Spec = exec::BackendRegistry::forCaps(Caps, false);
  exec::BackendRegistry Vla = exec::BackendRegistry::forCaps(Caps, true);
  const exec::Backend *S = Spec.find(4, true);
  const exec::Backend *V = Vla.find(4, true);
  ASSERT_NE(S, nullptr);
  ASSERT_NE(V, nullptr);
  EXPECT_TRUE(S->specialized());
  EXPECT_FALSE(V->specialized());
  EXPECT_EQ(S->width(), V->width());
  EXPECT_EQ(S->fastMath(), V->fastMath());
  // The scalar interpreter has no runtime-width twin; preferring VLA
  // still resolves it rather than failing.
  const exec::Backend *Scalar = Vla.find(1, false);
  ASSERT_NE(Scalar, nullptr);
  EXPECT_TRUE(Scalar->specialized());
}

double checksumAt(const easyml::ModelInfo &Info, StateLayout L, unsigned W) {
  exec::EngineConfig Cfg = exec::EngineConfig::baseline();
  Cfg.Width = W;
  Cfg.Layout = L;
  Cfg.FastMath = false; // exact mode: libm on every point
  Cfg.EnableLuts = true;
  std::string Error;
  auto M = exec::CompiledModel::compile(Info, Cfg, &Error);
  EXPECT_TRUE(M.has_value()) << Error;
  if (!M)
    return 0;
  sim::SimOptions Opts;
  Opts.NumCells = 37; // 37 % W != 0 for every width: tails matter
  Opts.NumSteps = 50;
  Opts.StimPeriod = 100.0;
  sim::Simulator S(*M, Opts);
  S.run();
  return S.stateChecksum();
}

TEST(Autotune, ExactModeChecksumsIdenticalAcrossSelectablePoints) {
  easyml::ModelInfo Info = testInfo();
  const exec::BackendRegistry &Reg = exec::BackendRegistry::global();
  double Ref = checksumAt(Info, StateLayout::AoS, 1);
  for (unsigned W : Reg.widths())
    for (StateLayout L :
         {StateLayout::AoS, StateLayout::SoA, StateLayout::AoSoA}) {
      if (L == StateLayout::AoSoA && W == 1)
        continue;
      double Sum = checksumAt(Info, L, W);
      // Bit-identical, not approximately equal: the tuner may pick any of
      // these points and must never change results in exact mode.
      EXPECT_EQ(Sum, Ref) << "point " << stateLayoutName(L) << "/w" << W;
    }
}

TEST(Autotune, ForcedSelectionIsDeterministic) {
  ScopedEnv Force("LIMPET_TUNE_FORCE", "soa/w4/vm");
  exec::EngineConfig Base = exec::EngineConfig::autoTuned();
  for (int I = 0; I != 3; ++I) {
    AutoSelection Sel = selectAutoConfig("test", TestModel, Base,
                                         exec::EngineTier::VM, false);
    ASSERT_TRUE(bool(Sel)) << Sel.Err.message();
    EXPECT_EQ(Sel.Source, TuneSource::Forced);
    EXPECT_EQ(Sel.Point.name(), "soa/w4/vm");
    EXPECT_EQ(Sel.Config.Width, 4u);
    EXPECT_EQ(Sel.Config.Layout, StateLayout::SoA);
    EXPECT_EQ(Sel.Tier, exec::EngineTier::VM);
    EXPECT_FALSE(Sel.Config.isAutoWidth());
    EXPECT_TRUE(Sel.Config.validate());
  }
}

TEST(Autotune, ForcedSelectionRejectsBadPoints) {
  exec::EngineConfig Base = exec::EngineConfig::autoTuned();
  {
    ScopedEnv Force("LIMPET_TUNE_FORCE", "not-a-point");
    AutoSelection Sel = selectAutoConfig("test", TestModel, Base,
                                         exec::EngineTier::VM, false);
    EXPECT_FALSE(bool(Sel));
  }
  {
    ScopedEnv Force("LIMPET_TUNE_FORCE", "aosoa/w3/vm");
    AutoSelection Sel = selectAutoConfig("test", TestModel, Base,
                                         exec::EngineTier::VM, false);
    EXPECT_FALSE(bool(Sel));
    EXPECT_NE(Sel.Err.message().find("width"), std::string::npos);
  }
  {
    // A native point under a VM driver would silently change the engine
    // contract: hard error, not a fallback.
    ScopedEnv Force("LIMPET_TUNE_FORCE", "aosoa/w4/native");
    AutoSelection Sel = selectAutoConfig("test", TestModel, Base,
                                         exec::EngineTier::VM, false);
    EXPECT_FALSE(bool(Sel));
  }
}

TEST(Autotune, HeuristicFallbackIsConcreteAndValid) {
  // No force, no record (the disk tier is off in this process), no tuner:
  // the capability heuristic must produce a compilable configuration.
  exec::EngineConfig Base = exec::EngineConfig::autoTuned();
  AutoSelection Sel = selectAutoConfig("test", TestModel, Base,
                                       exec::EngineTier::VM, false);
  ASSERT_TRUE(bool(Sel)) << Sel.Err.message();
  EXPECT_EQ(Sel.Source, TuneSource::Heuristic);
  EXPECT_FALSE(Sel.Config.isAutoWidth());
  EXPECT_TRUE(Sel.Config.validate());
  EXPECT_EQ(Sel.Tier, exec::EngineTier::VM);
  EXPECT_EQ(Sel.Rate, 0.0);
}

TEST(Autotune, HeuristicPointInvariants) {
  const exec::BackendRegistry &Reg = exec::BackendRegistry::global();
  TunePoint P = heuristicPoint(exec::EngineTier::VM);
  EXPECT_TRUE(Reg.supportsWidth(P.Width));
  EXPECT_LE(P.Width, 8u); // wider points must be measured, never guessed
  EXPECT_EQ(P.Layout == StateLayout::AoSoA, P.Width > 1);
  EXPECT_EQ(P.Tier, exec::EngineTier::VM);
  TunePoint N = heuristicPoint(exec::EngineTier::Auto);
  EXPECT_EQ(N.Tier, exec::EngineTier::Native);
  EXPECT_EQ(N.Width, P.Width);
}

} // namespace
