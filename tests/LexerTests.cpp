//===- LexerTests.cpp - easyml/Lexer unit tests -----------------------------===//

#include "easyml/Lexer.h"

#include <gtest/gtest.h>

using namespace limpet;
using namespace limpet::easyml;

namespace {

std::vector<Token> lexOk(std::string_view Src) {
  DiagnosticEngine Diags;
  auto Tokens = tokenize(Src, Diags);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  return Tokens;
}

TEST(Lexer, Identifiers) {
  auto T = lexOk("Vm diff_u1 _private x9");
  ASSERT_EQ(T.size(), 5u); // + EOF
  EXPECT_EQ(T[0].Kind, TokenKind::Identifier);
  EXPECT_EQ(T[0].Text, "Vm");
  EXPECT_EQ(T[1].Text, "diff_u1");
  EXPECT_EQ(T[2].Text, "_private");
  EXPECT_EQ(T[3].Text, "x9");
  EXPECT_EQ(T[4].Kind, TokenKind::Eof);
}

TEST(Lexer, Numbers) {
  auto T = lexOk("1 2.5 .5 1e3 1.5e-4 2E+2");
  ASSERT_EQ(T.size(), 7u);
  EXPECT_DOUBLE_EQ(T[0].NumberValue, 1);
  EXPECT_DOUBLE_EQ(T[1].NumberValue, 2.5);
  EXPECT_DOUBLE_EQ(T[2].NumberValue, 0.5);
  EXPECT_DOUBLE_EQ(T[3].NumberValue, 1000);
  EXPECT_DOUBLE_EQ(T[4].NumberValue, 1.5e-4);
  EXPECT_DOUBLE_EQ(T[5].NumberValue, 200);
}

TEST(Lexer, OperatorsAndPunctuation) {
  auto T = lexOk("= == != <= >= < > && || ! ? : ; , . ( ) { } + - * /");
  std::vector<TokenKind> Expected = {
      TokenKind::Assign,   TokenKind::EqEq,     TokenKind::NotEq,
      TokenKind::Le,       TokenKind::Ge,       TokenKind::Lt,
      TokenKind::Gt,       TokenKind::AndAnd,   TokenKind::OrOr,
      TokenKind::Not,      TokenKind::Question, TokenKind::Colon,
      TokenKind::Semicolon, TokenKind::Comma,   TokenKind::Dot,
      TokenKind::LParen,   TokenKind::RParen,   TokenKind::LBrace,
      TokenKind::RBrace,   TokenKind::Plus,     TokenKind::Minus,
      TokenKind::Star,     TokenKind::Slash,    TokenKind::Eof};
  ASSERT_EQ(T.size(), Expected.size());
  for (size_t I = 0; I != Expected.size(); ++I)
    EXPECT_EQ(T[I].Kind, Expected[I]) << "token " << I;
}

TEST(Lexer, Keywords) {
  auto T = lexOk("if else iffy");
  EXPECT_EQ(T[0].Kind, TokenKind::KwIf);
  EXPECT_EQ(T[1].Kind, TokenKind::KwElse);
  EXPECT_EQ(T[2].Kind, TokenKind::Identifier);
}

TEST(Lexer, Comments) {
  auto T = lexOk("a # line comment\nb // another\nc /* block\ncomment */ d");
  ASSERT_EQ(T.size(), 5u);
  EXPECT_EQ(T[0].Text, "a");
  EXPECT_EQ(T[1].Text, "b");
  EXPECT_EQ(T[2].Text, "c");
  EXPECT_EQ(T[3].Text, "d");
}

TEST(Lexer, SourceLocations) {
  auto T = lexOk("a\n  b");
  EXPECT_EQ(T[0].Loc.Line, 1);
  EXPECT_EQ(T[0].Loc.Col, 1);
  EXPECT_EQ(T[1].Loc.Line, 2);
  EXPECT_EQ(T[1].Loc.Col, 3);
}

TEST(Lexer, Strings) {
  auto T = lexOk("\"mV\"");
  EXPECT_EQ(T[0].Kind, TokenKind::String);
  EXPECT_EQ(T[0].Text, "mV");
}

TEST(Lexer, ReportsUnterminatedBlockComment) {
  DiagnosticEngine Diags;
  tokenize("a /* never closed", Diags);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(Lexer, ReportsBadCharacters) {
  DiagnosticEngine Diags;
  auto T = tokenize("a @ b", Diags);
  EXPECT_TRUE(Diags.hasErrors());
  // Lexing continues after the error.
  EXPECT_EQ(T.back().Kind, TokenKind::Eof);
}

TEST(Lexer, ReportsLoneAmpersand) {
  DiagnosticEngine Diags;
  tokenize("a & b", Diags);
  EXPECT_TRUE(Diags.hasErrors());
}

} // namespace
