//===- ArtifactTests.cpp - artifact serialization round-trip tests --------===//
//
// Satellite of the CompilerDriver issue: the serialized artifact format
// must round-trip bit-exactly (doubles travel as IEEE-754 bit patterns),
// and every structural failure mode — bad magic, version mismatch,
// checksum corruption, truncation at any offset — must come back as a
// recoverable error, never a crash or a misparse.
//
//===----------------------------------------------------------------------===//

#include "compiler/Artifact.h"
#include "compiler/CompilerDriver.h"
#include "models/Registry.h"

#include "gtest/gtest.h"

#include <cmath>
#include <cstdio>
#include <limits>

using namespace limpet;
using namespace limpet::compiler;
using namespace limpet::exec;

namespace {

const models::ModelEntry &entry(const char *Name) {
  const models::ModelEntry *E = models::findModel(Name);
  EXPECT_NE(E, nullptr) << Name;
  return *E;
}

/// Compiles a registry model cold (no cache) and packages it as an
/// artifact, exactly as the cache store path does.
Artifact compileToArtifact(const char *Name, const EngineConfig &Cfg) {
  DriverOptions Opts;
  Opts.Config = Cfg;
  Opts.UseCache = false;
  CompilerDriver Driver(Opts);
  CompileResult R = Driver.compileEntry(entry(Name));
  EXPECT_TRUE(bool(R)) << R.Err.message();
  return CompilerDriver::makeArtifact(*R.Model, Name, R.SourceHash);
}

TEST(Fnv1a64, KnownValuesAndChaining) {
  // FNV-1a of the empty string is the offset basis.
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ull);
  // Published FNV-1a 64 test vector.
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cull);
  // Chaining must differ from hashing the concatenation only by nothing:
  // fnv1a64("ab") == fnv1a64("b", fnv1a64("a")).
  EXPECT_EQ(fnv1a64("ab"), fnv1a64("b", fnv1a64("a")));
  EXPECT_NE(fnv1a64("ab"), fnv1a64("ba"));
}

TEST(ArtifactRoundTrip, ScalarBaselineExact) {
  Artifact A = compileToArtifact("HodgkinHuxley", EngineConfig::baseline());
  std::string Bytes = serializeArtifact(A);
  Expected<Artifact> B = deserializeArtifact(Bytes);
  ASSERT_TRUE(bool(B)) << B.status().message();
  EXPECT_EQ(B->FormatVersion, kArtifactFormatVersion);
  EXPECT_EQ(B->ModelName, A.ModelName);
  EXPECT_EQ(B->SourceHash, A.SourceHash);
  EXPECT_EQ(B->Config.Width, A.Config.Width);
  EXPECT_EQ(B->Config.Layout, A.Config.Layout);
  EXPECT_EQ(B->Config.PassPipeline, A.Config.PassPipeline);
  EXPECT_TRUE(programsIdentical(A.Program, B->Program));
  EXPECT_TRUE(lutsIdentical(A.Luts, B->Luts));
  // Re-serializing the parsed artifact must reproduce the exact bytes.
  EXPECT_EQ(serializeArtifact(*B), Bytes);
}

TEST(ArtifactRoundTrip, VectorizedWithLutsExact) {
  Artifact A = compileToArtifact("BeelerReuter", EngineConfig::limpetMLIR(8));
  EXPECT_FALSE(A.Luts.Tables.empty())
      << "limpetMLIR config should bake LUT tables";
  std::string Bytes = serializeArtifact(A);
  Expected<Artifact> B = deserializeArtifact(Bytes);
  ASSERT_TRUE(bool(B)) << B.status().message();
  EXPECT_TRUE(programsIdentical(A.Program, B->Program));
  EXPECT_TRUE(lutsIdentical(A.Luts, B->Luts));
  EXPECT_EQ(serializeArtifact(*B), Bytes);
}

TEST(ArtifactRoundTrip, EmptyColumnLutTableSurvives) {
  // Pathmanathan's LUT range ends up with zero approximable columns; the
  // empty table is still serialized (bytecode table indices must stay
  // stable) and must round-trip rather than be rejected as malformed.
  Artifact A = compileToArtifact("Pathmanathan", EngineConfig::limpetMLIR(8));
  bool HasEmpty = false;
  for (const runtime::LutTable &T : A.Luts.Tables)
    HasEmpty |= T.cols() == 0;
  ASSERT_TRUE(HasEmpty) << "expected an empty-column LUT table";
  Expected<Artifact> B = deserializeArtifact(serializeArtifact(A));
  ASSERT_TRUE(bool(B)) << B.status().message();
  EXPECT_TRUE(lutsIdentical(A.Luts, B->Luts));
}

TEST(ArtifactRoundTrip, SpecialDoublesSurvive) {
  // NaN payloads, -0.0 and infinities must travel as bit patterns, not
  // through any text formatting.
  Artifact A = compileToArtifact("Plonsey", EngineConfig::baseline());
  ASSERT_FALSE(A.Program.Body.empty());
  A.Program.Body[0].Imm = -0.0;
  if (A.Program.Body.size() > 1)
    A.Program.Body[1].Imm = std::numeric_limits<double>::quiet_NaN();
  if (A.Program.Body.size() > 2)
    A.Program.Body[2].Imm = -std::numeric_limits<double>::infinity();
  Expected<Artifact> B = deserializeArtifact(serializeArtifact(A));
  ASSERT_TRUE(bool(B)) << B.status().message();
  EXPECT_TRUE(programsIdentical(A.Program, B->Program));
  EXPECT_TRUE(std::signbit(B->Program.Body[0].Imm));
  if (A.Program.Body.size() > 1) {
    EXPECT_TRUE(std::isnan(B->Program.Body[1].Imm));
  }
}

TEST(ArtifactReject, BadMagic) {
  Artifact A = compileToArtifact("Plonsey", EngineConfig::baseline());
  std::string Bytes = serializeArtifact(A);
  Bytes[0] ^= 0xff;
  Expected<Artifact> B = deserializeArtifact(Bytes);
  ASSERT_FALSE(bool(B));
  EXPECT_NE(B.status().message().find("magic"), std::string::npos)
      << B.status().message();
}

TEST(ArtifactReject, VersionMismatch) {
  Artifact A = compileToArtifact("Plonsey", EngineConfig::baseline());
  std::string Bytes = serializeArtifact(A);
  // The u32 version follows the 4-byte magic (little endian).
  Bytes[4] = char(kArtifactFormatVersion + 1);
  Expected<Artifact> B = deserializeArtifact(Bytes);
  ASSERT_FALSE(bool(B));
  EXPECT_NE(B.status().message().find("version"), std::string::npos)
      << B.status().message();
}

TEST(ArtifactReject, CorruptPayloadFailsChecksum) {
  Artifact A = compileToArtifact("Plonsey", EngineConfig::baseline());
  std::string Bytes = serializeArtifact(A);
  // Flip a byte deep inside the payload; the checksum must catch it.
  Bytes[Bytes.size() / 2] ^= 0x5a;
  Expected<Artifact> B = deserializeArtifact(Bytes);
  ASSERT_FALSE(bool(B));
  EXPECT_NE(B.status().message().find("checksum"), std::string::npos)
      << B.status().message();
}

TEST(ArtifactReject, TruncationAtEveryPrefixIsRecoverable) {
  Artifact A = compileToArtifact("Plonsey", EngineConfig::baseline());
  std::string Bytes = serializeArtifact(A);
  // Every proper prefix must fail cleanly (no crash, no false accept).
  // Step through offsets to keep the test fast on large artifacts.
  size_t Step = Bytes.size() > 512 ? Bytes.size() / 257 : 1;
  for (size_t Len = 0; Len < Bytes.size(); Len += Step) {
    Expected<Artifact> B = deserializeArtifact(Bytes.substr(0, Len));
    EXPECT_FALSE(bool(B)) << "prefix of length " << Len << " was accepted";
  }
}

TEST(ArtifactReject, TrailingGarbageRejected) {
  Artifact A = compileToArtifact("Plonsey", EngineConfig::baseline());
  std::string Bytes = serializeArtifact(A) + "extra";
  Expected<Artifact> B = deserializeArtifact(Bytes);
  ASSERT_FALSE(bool(B));
}

TEST(ArtifactFile, WriteReadRoundTrip) {
  Artifact A = compileToArtifact("Plonsey", EngineConfig::limpetMLIR(4));
  std::string Path = ::testing::TempDir() + "limpet-artifact-test.lmpa";
  Status S = writeArtifactFile(A, Path);
  ASSERT_TRUE(bool(S)) << S.message();
  Expected<Artifact> B = readArtifactFile(Path);
  ASSERT_TRUE(bool(B)) << B.status().message();
  EXPECT_TRUE(programsIdentical(A.Program, B->Program));
  EXPECT_TRUE(lutsIdentical(A.Luts, B->Luts));
  std::remove(Path.c_str());
}

TEST(ArtifactFile, MissingFileIsRecoverable) {
  Expected<Artifact> B =
      readArtifactFile(::testing::TempDir() + "no-such-artifact.lmpa");
  EXPECT_FALSE(bool(B));
}

TEST(ArtifactIdentity, ProgramComparatorSeesDifferences) {
  Artifact A = compileToArtifact("Plonsey", EngineConfig::baseline());
  exec::BcProgram Tampered = A.Program;
  ASSERT_FALSE(Tampered.Body.empty());
  Tampered.Body.back().Imm += 1.0;
  EXPECT_FALSE(programsIdentical(A.Program, Tampered));
  Tampered = A.Program;
  Tampered.NumRegs += 1;
  EXPECT_FALSE(programsIdentical(A.Program, Tampered));
}

} // namespace
