//===- EquivalenceTests.cpp - engine equivalence over the whole suite ----------===//
//
// The central correctness property of the reproduction: for every one of
// the 43 models, the limpetMLIR configuration (vector engine, AoSoA
// layout, vector LUT, vector math) produces the same simulation as the
// openCARP-baseline configuration (scalar engine, AoS, libm), within
// floating-point tolerance.
//
//===----------------------------------------------------------------------===//

#include "easyml/Sema.h"
#include "exec/CompiledModel.h"
#include "models/Registry.h"
#include "sim/Simulator.h"

#include <cmath>
#include <gtest/gtest.h>

using namespace limpet;
using namespace limpet::exec;
using namespace limpet::models;

namespace {

class ModelEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(ModelEquivalence, LimpetMLIRMatchesBaseline) {
  const ModelEntry &M = modelRegistry()[size_t(GetParam())];
  DiagnosticEngine Diags;
  auto Info = easyml::compileModelInfo(M.Name, M.Source, Diags);
  ASSERT_TRUE(Info.has_value()) << Diags.str();

  auto Base = CompiledModel::compile(*Info, EngineConfig::baseline());
  ASSERT_TRUE(Base.has_value());
  auto Vec = CompiledModel::compile(*Info, EngineConfig::limpetMLIR(8));
  ASSERT_TRUE(Vec.has_value());

  sim::SimOptions Opts;
  Opts.NumCells = 33; // exercises the vector epilogue
  Opts.NumSteps = 400;
  Opts.StimPeriod = 100.0;
  sim::Simulator S1(*Base, Opts), S2(*Vec, Opts);
  S1.run();
  S2.run();

  double C1 = S1.stateChecksum(), C2 = S2.stateChecksum();
  ASSERT_TRUE(std::isfinite(C1)) << M.Name;
  double Rel = std::fabs(C1 - C2) / std::max(std::fabs(C1), 1e-9);
  EXPECT_LT(Rel, 1e-8) << M.Name << " base=" << C1 << " vec=" << C2;
}

INSTANTIATE_TEST_SUITE_P(All43, ModelEquivalence, ::testing::Range(0, 43),
                         [](const ::testing::TestParamInfo<int> &I) {
                           return modelRegistry()[size_t(I.param)].Name;
                         });

TEST(Equivalence, AutoVecConfigMatchesToo) {
  // The Sec. 5 comparison configuration must also be semantically correct.
  const ModelEntry *M = findModel("HodgkinHuxley");
  ASSERT_NE(M, nullptr);
  DiagnosticEngine Diags;
  auto Info = easyml::compileModelInfo(M->Name, M->Source, Diags);
  ASSERT_TRUE(Info.has_value());
  auto Base = CompiledModel::compile(*Info, EngineConfig::baseline());
  auto Auto = CompiledModel::compile(*Info, EngineConfig::autoVecLike(8));
  sim::SimOptions Opts;
  Opts.NumCells = 50;
  Opts.NumSteps = 500;
  sim::Simulator S1(*Base, Opts), S2(*Auto, Opts);
  S1.run();
  S2.run();
  EXPECT_NEAR(S1.stateChecksum(), S2.stateChecksum(),
              1e-8 * std::fabs(S1.stateChecksum()));
}

TEST(Equivalence, NoLutConfigCloseToLut) {
  // Disabling LUTs changes results only by the interpolation error.
  const ModelEntry *M = findModel("BeelerReuter");
  ASSERT_NE(M, nullptr);
  DiagnosticEngine Diags;
  auto Info = easyml::compileModelInfo(M->Name, M->Source, Diags);
  ASSERT_TRUE(Info.has_value());
  EngineConfig NoLut = EngineConfig::baseline();
  NoLut.EnableLuts = false;
  auto A = CompiledModel::compile(*Info, EngineConfig::baseline());
  auto B = CompiledModel::compile(*Info, NoLut);
  sim::SimOptions Opts;
  Opts.NumCells = 8;
  Opts.NumSteps = 2000; // a full action potential
  Opts.RecordTrace = true;
  sim::Simulator S1(*A, Opts), S2(*B, Opts);
  S1.run();
  S2.run();
  // Compare the Vm traces pointwise.
  ASSERT_EQ(S1.trace().size(), S2.trace().size());
  for (size_t I = 0; I != S1.trace().size(); ++I)
    EXPECT_NEAR(S1.trace()[I], S2.trace()[I], 0.75)
        << "step " << I; // mV-level agreement over the AP upstroke
}

TEST(Equivalence, ThreadedRunMatchesSerial) {
  const ModelEntry *M = findModel("LuoRudy91");
  ASSERT_NE(M, nullptr);
  DiagnosticEngine Diags;
  auto Info = easyml::compileModelInfo(M->Name, M->Source, Diags);
  auto Model = CompiledModel::compile(*Info, EngineConfig::limpetMLIR(8));
  ASSERT_TRUE(Model.has_value());
  sim::SimOptions Serial;
  Serial.NumCells = 120;
  Serial.NumSteps = 200;
  sim::SimOptions Threaded = Serial;
  Threaded.NumThreads = 4;
  sim::Simulator S1(*Model, Serial), S2(*Model, Threaded);
  S1.run();
  S2.run();
  EXPECT_DOUBLE_EQ(S1.stateChecksum(), S2.stateChecksum());
}

} // namespace
