//===- BenchHarnessTests.cpp - src/bench harness unit tests ---------------------===//

#include "bench/BenchHarness.h"
#include "support/StringUtils.h"

#include <cmath>
#include <cstdlib>
#include <gtest/gtest.h>

using namespace limpet;
using namespace limpet::bench;

namespace {

TEST(Geomean, MatchesClosedForm) {
  EXPECT_DOUBLE_EQ(geomean({4.0}), 4.0);
  EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
  EXPECT_NEAR(geomean({2.0, 8.0}), 4.0, 1e-12);
  EXPECT_NEAR(geomean({1.0, 1.0, 8.0}), 2.0, 1e-12);
}

TEST(Geomean, IgnoresNonPositive) {
  EXPECT_NEAR(geomean({2.0, 8.0, 0.0, -1.0}), 4.0, 1e-12);
  EXPECT_DOUBLE_EQ(geomean({}), 0.0);
  EXPECT_DOUBLE_EQ(geomean({0.0}), 0.0);
}

TEST(RenderTable, AlignsColumnsWithHeaderRule) {
  std::string Out = renderTable({{"name", "x"}, {"abc", "1.50"},
                                 {"longername", "2"}});
  // Header, rule, two data rows.
  auto Lines = splitString(Out, '\n');
  ASSERT_GE(Lines.size(), 4u);
  EXPECT_NE(Lines[1].find("---"), std::string::npos);
  // First column left-aligned, second right-aligned.
  EXPECT_EQ(Lines[2].find("abc"), 0u);
  EXPECT_EQ(Lines[3].find("longername"), 0u);
  EXPECT_EQ(Lines[2].size(), Lines[3].size());
}

TEST(RenderTable, EmptyInput) { EXPECT_EQ(renderTable({}), ""); }

TEST(Protocol, EnvOverridesApply) {
  setenv("LIMPET_BENCH_CELLS", "123", 1);
  setenv("LIMPET_BENCH_STEPS", "45", 1);
  setenv("LIMPET_BENCH_REPEATS", "7", 1);
  BenchProtocol P = BenchProtocol::fromEnv(4096, 100, 3);
  EXPECT_EQ(P.NumCells, 123);
  EXPECT_EQ(P.NumSteps, 45);
  EXPECT_EQ(P.Repeats, 7);
  unsetenv("LIMPET_BENCH_CELLS");
  unsetenv("LIMPET_BENCH_STEPS");
  unsetenv("LIMPET_BENCH_REPEATS");
  BenchProtocol D = BenchProtocol::fromEnv(4096, 100, 3);
  EXPECT_EQ(D.NumCells, 4096);
  EXPECT_EQ(D.NumSteps, 100);
  EXPECT_EQ(D.Repeats, 3);
}

TEST(Selection, DefaultsToAll43) {
  unsetenv("LIMPET_BENCH_MODELS");
  EXPECT_EQ(selectedModels().size(), 43u);
}

TEST(Selection, FilterSelectsByName) {
  setenv("LIMPET_BENCH_MODELS", "OHara,HodgkinHuxley", 1);
  auto Sel = selectedModels();
  unsetenv("LIMPET_BENCH_MODELS");
  ASSERT_EQ(Sel.size(), 2u);
  EXPECT_EQ(Sel[0]->Name, "OHara");
  EXPECT_EQ(Sel[1]->Name, "HodgkinHuxley");
}

TEST(ModelCacheT, ReusesCompilations) {
  ModelCache Cache;
  const models::ModelEntry *M = models::findModel("Plonsey");
  ASSERT_NE(M, nullptr);
  const exec::CompiledModel &A =
      Cache.get(*M, exec::EngineConfig::baseline());
  const exec::CompiledModel &B =
      Cache.get(*M, exec::EngineConfig::baseline());
  EXPECT_EQ(&A, &B);
  const exec::CompiledModel &C =
      Cache.get(*M, exec::EngineConfig::limpetMLIR(8));
  EXPECT_NE(&A, &C);
}

TEST(Timing, MeasuresPositiveTime) {
  ModelCache Cache;
  const models::ModelEntry *M = models::findModel("Plonsey");
  const exec::CompiledModel &Model =
      Cache.get(*M, exec::EngineConfig::baseline());
  BenchProtocol P;
  P.NumCells = 64;
  P.NumSteps = 10;
  P.Repeats = 3;
  double T = timeSimulation(Model, P, 1);
  EXPECT_GT(T, 0.0);
  EXPECT_LT(T, 5.0);
}

TEST(ClassNames, AllThree) {
  EXPECT_EQ(className('S'), "small");
  EXPECT_EQ(className('M'), "medium");
  EXPECT_EQ(className('L'), "large");
}

} // namespace
