//===- VectorizeTests.cpp - codegen/Vectorize unit tests ------------------------===//

#include "support/Casting.h"
#include "codegen/Vectorize.h"
#include "easyml/Sema.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

using namespace limpet;
using namespace limpet::codegen;
using namespace limpet::ir;

namespace {

constexpr const char MiniModel[] = R"(
Vm; .external(); .nodal();
Iion; .external();
group{ g = 0.5; E = -80.0; }.param();
Vm_init = -80.0;
diff_w = 0.1*(Vm - E) - 0.2*w + exp(Vm/30.0)*0.01;
w_init = 0.25;
Iion = g*(Vm - E) + w;
)";

GeneratedKernel makeKernel(StateLayout Layout, unsigned W) {
  DiagnosticEngine Diags;
  auto Info = easyml::compileModelInfo("mini", MiniModel, Diags);
  EXPECT_TRUE(Info.has_value()) << Diags.str();
  CodeGenOptions Options;
  Options.Layout = Layout;
  Options.AoSoABlockWidth = W;
  Options.EnableLuts = false;
  return generateKernel(*Info, Options);
}

unsigned countOps(Operation *Func, OpCode Code) {
  unsigned N = 0;
  Func->walk([&](Operation *Op) { N += Op->opcode() == Code; });
  return N;
}

TEST(Vectorize, VectorFunctionVerifies) {
  for (StateLayout Layout :
       {StateLayout::AoS, StateLayout::SoA, StateLayout::AoSoA}) {
    for (unsigned W : {2u, 4u, 8u}) {
      if (Layout != StateLayout::AoSoA && W != 8)
        continue; // exercise widths once; layouts once each
      GeneratedKernel K = makeKernel(Layout, W);
      Operation *Vec = vectorizeKernel(K, W);
      VerifyResult R = verifyFunction(Vec);
      EXPECT_TRUE(R) << stateLayoutName(Layout) << " W=" << W << ": "
                     << R.Message;
    }
  }
}

TEST(Vectorize, StepBecomesVectorWidth) {
  GeneratedKernel K = makeKernel(StateLayout::AoSoA, 8);
  Operation *Vec = vectorizeKernel(K, 8);
  Operation *For = nullptr;
  Vec->walk([&](Operation *Op) {
    if (Op->opcode() == OpCode::ScfFor)
      For = Op;
  });
  ASSERT_NE(For, nullptr);
  Operation *StepDef = cast<OpResult>(For->operand(2))->owner();
  EXPECT_EQ(StepDef->opcode(), OpCode::ArithConstantI);
  EXPECT_EQ(StepDef->attr("value").asInt(), 8);
}

TEST(Vectorize, AoSoAUsesContiguousVectorLoads) {
  GeneratedKernel K = makeKernel(StateLayout::AoSoA, 8);
  Operation *Vec = vectorizeKernel(K, 8);
  EXPECT_GE(countOps(Vec, OpCode::VecLoad), 2u); // state + ext
  EXPECT_EQ(countOps(Vec, OpCode::VecGather), 0u);
  EXPECT_EQ(countOps(Vec, OpCode::VecScatter), 0u);
  EXPECT_GE(countOps(Vec, OpCode::VecStore), 2u);
}

TEST(Vectorize, AoSUsesGatherScatterForState) {
  GeneratedKernel K = makeKernel(StateLayout::AoS, 8);
  Operation *Vec = vectorizeKernel(K, 8);
  EXPECT_EQ(countOps(Vec, OpCode::VecGather), 1u);  // w load
  EXPECT_EQ(countOps(Vec, OpCode::VecScatter), 1u); // w store
  // Externals stay contiguous even in AoS.
  EXPECT_GE(countOps(Vec, OpCode::VecLoad), 1u);
  // Gather stride equals the struct size (1 sv here).
  Vec->walk([&](Operation *Op) {
    if (Op->opcode() == OpCode::VecGather)
      EXPECT_EQ(Op->attr("stride").asInt(), 1);
  });
}

TEST(Vectorize, ParamLoadsStayScalarWithBroadcast) {
  GeneratedKernel K = makeKernel(StateLayout::AoSoA, 8);
  Operation *Vec = vectorizeKernel(K, 8);
  Vec->walk([&](Operation *Op) {
    if (Op->opcode() == OpCode::MemLoad) {
      EXPECT_EQ(Op->attr(attrs::Role).asString(), "param");
      EXPECT_TRUE(Op->result(0)->type().isF64()); // still scalar
    }
  });
  EXPECT_GE(countOps(Vec, OpCode::VecBroadcast), 1u);
}

TEST(Vectorize, ComputeOpsBecomeVectorTyped) {
  GeneratedKernel K = makeKernel(StateLayout::AoSoA, 4);
  Operation *Vec = vectorizeKernel(K, 4);
  Operation *For = nullptr;
  Vec->walk([&](Operation *Op) {
    if (Op->opcode() == OpCode::ScfFor)
      For = Op;
  });
  ASSERT_NE(For, nullptr);
  for (Operation *Op : forBody(For).ops()) {
    if (Op->opcode() == OpCode::MathExp || Op->opcode() == OpCode::ArithMulF)
      EXPECT_EQ(Op->result(0)->type(), K.Ctx->vecF64(4))
          << printOp(Op);
  }
}

TEST(Vectorize, FunctionNamedAndAttributed) {
  GeneratedKernel K = makeKernel(StateLayout::AoSoA, 8);
  Operation *Vec = vectorizeKernel(K, 8);
  EXPECT_EQ(Vec->attr("sym_name").asString(), "compute_vec8");
  EXPECT_EQ(Vec->attr(attrs::Width).asInt(), 8);
  EXPECT_NE(K.Mod->lookupFunction("compute_vec8"), nullptr);
  // The scalar kernel is still present.
  EXPECT_NE(K.Mod->lookupFunction("compute"), nullptr);
}

TEST(Vectorize, LutOpsVectorized) {
  DiagnosticEngine Diags;
  auto Info = easyml::compileModelInfo(
      "lut",
      "Vm; .external(); .lookup(-100, 100, 0.05);\nIion; .external();\n"
      "diff_w = exp(Vm/20.0)*(1.0-w) - 0.4*w;\nw_init = 0.5;\nIion = w;",
      Diags);
  ASSERT_TRUE(Info.has_value());
  CodeGenOptions Options;
  Options.Layout = StateLayout::AoSoA;
  Options.AoSoABlockWidth = 8;
  GeneratedKernel K = generateKernel(*Info, Options);
  Operation *Vec = vectorizeKernel(K, 8);
  bool SawVectorCoord = false;
  Vec->walk([&](Operation *Op) {
    if (Op->opcode() == OpCode::LutCoord) {
      EXPECT_EQ(Op->result(0)->type(), K.Ctx->vecI64(8));
      EXPECT_EQ(Op->result(1)->type(), K.Ctx->vecF64(8));
      SawVectorCoord = true;
    }
    if (Op->opcode() == OpCode::LutInterp)
      EXPECT_EQ(Op->result(0)->type(), K.Ctx->vecF64(8));
  });
  EXPECT_TRUE(SawVectorCoord);
}

} // namespace
