//===- IntegratorTests.cpp - integration method property tests ----------------===//
//
// Convergence-order and stability properties of the six integration
// methods (paper Sec. 3.3.2), measured end-to-end through the compiled
// kernels: fe is first order, rk2 second, rk4 fourth, Rush-Larsen is exact
// on linear gates, Sundnes is second order on nonlinear problems, and
// markov_be is stable on stiff problems and clamps to [0, 1].
//
//===----------------------------------------------------------------------===//

#include "easyml/Sema.h"
#include "exec/CompiledModel.h"

#include <cmath>
#include <gtest/gtest.h>

using namespace limpet;
using namespace limpet::exec;

namespace {

/// Compiles a single-state-variable model and integrates it for TotalT
/// time with the given dt on one cell; returns the final state value.
double integrate(const std::string &Source, double Dt, double TotalT) {
  DiagnosticEngine Diags;
  auto Info = easyml::compileModelInfo("ode", Source, Diags);
  EXPECT_TRUE(Info.has_value()) << Diags.str();
  auto Model = CompiledModel::compile(*Info, EngineConfig::baseline());
  EXPECT_TRUE(Model.has_value());

  std::vector<double> State(Model->stateArraySize(1));
  Model->initializeState(State.data(), 1);
  std::vector<double> Params = Model->defaultParams();

  KernelArgs Args;
  Args.State = State.data();
  Args.Params = Params.data();
  Args.Start = 0;
  Args.End = 1;
  Args.NumCells = 1;
  Args.Dt = Dt;
  int64_t Steps = int64_t(std::llround(TotalT / Dt));
  for (int64_t I = 0; I != Steps; ++I) {
    Args.T = double(I) * Dt;
    Model->computeStep(Args);
  }
  return Model->readState(State.data(), 0, 0, 1);
}

/// Measures the observed convergence order of \p Method on a given ODE by
/// halving dt: order ~= log2(err(2h)/err(h)).
double convergenceOrder(const std::string &Method, const std::string &Ode,
                        double Exact, double CoarseDt) {
  std::string Src = Ode + "\ny; .method(" + Method + ");\n";
  double ErrCoarse = std::fabs(integrate(Src, CoarseDt, 1.0) - Exact);
  double ErrFine = std::fabs(integrate(Src, CoarseDt / 2, 1.0) - Exact);
  EXPECT_GT(ErrCoarse, 0.0);
  EXPECT_GT(ErrFine, 0.0);
  return std::log2(ErrCoarse / ErrFine);
}

// dy/dt = -y, y(0) = 1, y(1) = exp(-1). Nonstiff linear problem.
const std::string LinearOde = "diff_y = -y;\ny_init = 1.0;";
const double LinearExact = std::exp(-1.0);

// dy/dt = -y^3, y(0) = 1 -> y(t) = 1/sqrt(1+2t). Nonlinear.
const std::string CubicOde = "diff_y = -y*y*y;\ny_init = 1.0;";
const double CubicExact = 1.0 / std::sqrt(3.0);

TEST(Integrators, ForwardEulerIsFirstOrder) {
  double Order = convergenceOrder("fe", CubicOde, CubicExact, 0.05);
  EXPECT_NEAR(Order, 1.0, 0.25);
}

TEST(Integrators, RK2IsSecondOrder) {
  double Order = convergenceOrder("rk2", CubicOde, CubicExact, 0.05);
  EXPECT_NEAR(Order, 2.0, 0.35);
}

TEST(Integrators, RK4IsFourthOrder) {
  // Measured on the linear problem: the cubic ODE's rk4 error changes
  // sign near dt ~ 0.2 (apparent superconvergence), and finer steps sit
  // on the rounding floor. Coarse steps on exp decay are clean.
  double Order = convergenceOrder("rk4", LinearOde, LinearExact, 0.25);
  EXPECT_NEAR(Order, 4.0, 0.5);
}

TEST(Integrators, RushLarsenExactOnLinearGate) {
  // dy/dt = a(1-y) - b y with constant a, b has an exact exponential
  // solution; Rush-Larsen must reproduce it to rounding regardless of dt.
  std::string Src = "diff_y = 0.3*(1.0-y) - 0.7*y;\ny_init = 0.9;\n"
                    "y; .method(rush_larsen);\n";
  double A = 0.3, B = 0.7, Y0 = 0.9, T = 1.0;
  double YInf = A / (A + B);
  double Exact = YInf + (Y0 - YInf) * std::exp(-(A + B) * T);
  // Large dt: still exact.
  EXPECT_NEAR(integrate(Src, 0.5, T), Exact, 1e-12);
  EXPECT_NEAR(integrate(Src, 0.01, T), Exact, 1e-11);
}

TEST(Integrators, RushLarsenStableAtLargeDt) {
  // Stiff gate: fe would explode at dt = 0.5 (|1 - dt*1000| >> 1); RL
  // remains bounded in [0, 1].
  std::string Src = "diff_y = 1000.0*(0.5 - y);\ny_init = 0.0;\n"
                    "y; .method(rush_larsen);\n";
  double Y = integrate(Src, 0.5, 1.0);
  EXPECT_NEAR(Y, 0.5, 1e-9);
}

TEST(Integrators, ForwardEulerUnstableOnStiffGate) {
  // The contrast case for the test above: |1 - dt*k| = 499 per step, so
  // the iterates grow by ~499x each of the 8 steps.
  std::string Src = "diff_y = 1000.0*(0.5 - y);\ny_init = 0.0;\n";
  double Y = integrate(Src, 0.5, 4.0);
  EXPECT_GT(std::fabs(Y), 1e10);
}

TEST(Integrators, SundnesSecondOrderOnNonlinear) {
  double Order = convergenceOrder("sundnes", CubicOde, CubicExact, 0.1);
  EXPECT_GT(Order, 1.6);
}

TEST(Integrators, SundnesExactOnLinearGate) {
  std::string Src = "diff_y = 0.3*(1.0-y) - 0.7*y;\ny_init = 0.9;\n"
                    "y; .method(sundnes);\n";
  double A = 0.3, B = 0.7, Y0 = 0.9;
  double YInf = A / (A + B);
  double Exact = YInf + (Y0 - YInf) * std::exp(-(A + B));
  EXPECT_NEAR(integrate(Src, 0.25, 1.0), Exact, 1e-10);
}

TEST(Integrators, MarkovBEStableOnStiffProblem) {
  std::string Src = "diff_y = 200.0*(0.8 - y);\ny_init = 0.1;\n"
                    "y; .method(markov_be);\n";
  double Y = integrate(Src, 0.1, 1.0);
  EXPECT_NEAR(Y, 0.8, 1e-6);
}

TEST(Integrators, MarkovBEClampsToUnitInterval) {
  // A drift that would push y above 1; the refinement clamps it.
  std::string Src = "diff_y = 5.0;\ny_init = 0.9;\ny; .method(markov_be);\n";
  double Y = integrate(Src, 0.1, 1.0);
  EXPECT_DOUBLE_EQ(Y, 1.0);
  std::string Src2 =
      "diff_y = -5.0;\ny_init = 0.1;\ny; .method(markov_be);\n";
  EXPECT_DOUBLE_EQ(integrate(Src2, 0.1, 1.0), 0.0);
}

TEST(Integrators, MarkovBEConvergesFirstOrder) {
  double Order = convergenceOrder("markov_be", CubicOde, CubicExact, 0.05);
  EXPECT_GT(Order, 0.7);
}

TEST(Integrators, AllMethodsAgreeAtSmallDt) {
  // With dt -> 0 every method converges to the same trajectory.
  for (const char *Method :
       {"fe", "rk2", "rk4", "rush_larsen", "sundnes", "markov_be"}) {
    std::string Src =
        CubicOde + "\ny; .method(" + std::string(Method) + ");\n";
    EXPECT_NEAR(integrate(Src, 0.001, 1.0), CubicExact, 2e-3) << Method;
  }
}

} // namespace
