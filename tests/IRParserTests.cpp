//===- IRParserTests.cpp - textual IR parser tests -------------------------------===//

#include "codegen/Vectorize.h"
#include "easyml/Sema.h"
#include "ir/IRParser.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "models/Registry.h"

#include <gtest/gtest.h>

using namespace limpet;
using namespace limpet::ir;

namespace {

TEST(IRParser, ParsesTrivialFunction) {
  Context Ctx;
  ParseIRResult R = parseIR(R"(func.func @f(%arg0: f64) {
  %0 = arith.constant {value = 2.5} : f64
  %1 = arith.addf %arg0, %0 : f64
  func.return
}
)",
                            Ctx);
  ASSERT_TRUE(R) << R.Error;
  Operation *F = R.Mod->lookupFunction("f");
  ASSERT_NE(F, nullptr);
  EXPECT_TRUE(verifyFunction(F));
}

TEST(IRParser, RoundTripsWhatItParses) {
  Context Ctx;
  std::string Text = R"(func.func @g(%arg0: memref<?xf64>, %arg1: i64) {
  %0 = memref.load %arg0, %arg1 {limpet.role = "state", limpet.index = 3} : f64
  %1 = arith.constant {value = 0.5} : f64
  %2 = arith.cmpf %0, %1 {predicate = "lt"} : i1
  %3 = arith.select %2, %0, %1 : f64
  memref.store %3, %arg0, %arg1
  func.return
}
)";
  ParseIRResult R = parseIR(Text, Ctx);
  ASSERT_TRUE(R) << R.Error;
  EXPECT_EQ(printModule(*R.Mod), Text);
}

TEST(IRParser, ParsesForLoops) {
  Context Ctx;
  std::string Text = R"(func.func @loop(%arg0: i64, %arg1: i64) {
  %0 = arith.constant_int {value = 2} : i64
  scf.for %arg2 = %arg0 to %arg1 step %0 {
    %1 = arith.addi %arg2, %0 : i64
    scf.yield
  }
  func.return
}
)";
  ParseIRResult R = parseIR(Text, Ctx);
  ASSERT_TRUE(R) << R.Error;
  EXPECT_TRUE(verifyFunction(R.Mod->functions()[0].get()));
  EXPECT_EQ(printModule(*R.Mod), Text);
}

TEST(IRParser, ParsesVectorTypesAndMultiResultOps) {
  Context Ctx;
  std::string Text = R"(func.func @v(%arg0: f64) {
  %0 = vector.broadcast %arg0 : vector<8xf64>
  %1, %2 = lut.coord %0 {table = 1} : vector<8xi64>, vector<8xf64>
  %3 = lut.interp %1, %2 {table = 1, col = 4} : vector<8xf64>
  func.return
}
)";
  ParseIRResult R = parseIR(Text, Ctx);
  ASSERT_TRUE(R) << R.Error;
  EXPECT_TRUE(verifyFunction(R.Mod->functions()[0].get()));
  EXPECT_EQ(printModule(*R.Mod), Text);
}

TEST(IRParser, ParsesIfRegions) {
  Context Ctx;
  std::string Text = R"(func.func @cond(%arg0: f64) {
  %0 = arith.constant {value = 0} : f64
  %1 = arith.cmpf %arg0, %0 {predicate = "lt"} : i1
  %2 = scf.if %1 : f64 {
    %3 = arith.negf %arg0 : f64
    scf.yield %3
  } else {
    scf.yield %arg0
  }
  func.return
}
)";
  ParseIRResult R = parseIR(Text, Ctx);
  ASSERT_TRUE(R) << R.Error;
  EXPECT_TRUE(verifyFunction(R.Mod->functions()[0].get()))
      << verifyFunction(R.Mod->functions()[0].get()).Message;
}

TEST(IRParser, ReportsErrors) {
  Context Ctx;
  EXPECT_FALSE(parseIR("", Ctx));
  EXPECT_FALSE(parseIR("func.func @f( {", Ctx));
  ParseIRResult Undef = parseIR(R"(func.func @f() {
  %0 = arith.negf %9 : f64
  func.return
}
)",
                                Ctx);
  ASSERT_FALSE(Undef);
  EXPECT_NE(Undef.Error.find("undefined value"), std::string::npos);
  ParseIRResult BadOp = parseIR(R"(func.func @f() {
  %0 = arith.bogus : f64
  func.return
}
)",
                                Ctx);
  ASSERT_FALSE(BadOp);
  EXPECT_NE(BadOp.Error.find("unknown operation"), std::string::npos);
}

/// The big property: every generated kernel (scalar and vectorized) of
/// every suite model round-trips through print -> parse -> print.
class KernelRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(KernelRoundTrip, PrintParsePrintIsFixpoint) {
  const models::ModelEntry &M = models::modelRegistry()[size_t(GetParam())];
  DiagnosticEngine Diags;
  auto Info = easyml::compileModelInfo(M.Name, M.Source, Diags);
  ASSERT_TRUE(Info.has_value()) << Diags.str();
  codegen::CodeGenOptions Options;
  Options.Layout = codegen::StateLayout::AoSoA;
  Options.AoSoABlockWidth = 8;
  codegen::GeneratedKernel K = codegen::generateKernel(*Info, Options);
  codegen::vectorizeKernel(K, 8);

  for (const auto &F : K.Mod->functions()) {
    std::string Printed = printOp(F.get());
    Context Ctx2;
    ParseIRResult R = parseIR(Printed, Ctx2);
    ASSERT_TRUE(R) << M.Name << ": " << R.Error << "\n" << Printed;
    Operation *Reparsed = R.Mod->functions()[0].get();
    VerifyResult V = verifyFunction(Reparsed);
    EXPECT_TRUE(V) << M.Name << ": " << V.Message;
    EXPECT_EQ(printOp(Reparsed), Printed) << M.Name;
  }
}

INSTANTIATE_TEST_SUITE_P(All43, KernelRoundTrip, ::testing::Range(0, 43),
                         [](const ::testing::TestParamInfo<int> &I) {
                           return models::modelRegistry()[size_t(I.param)]
                               .Name;
                         });

} // namespace
