//===- CompilerDriverTests.cpp - staged driver + compile cache tests ------===//
//
// Covers the CompilerDriver tentpole: stage records and snapshots,
// recoverable errors at every stage (frontend garbage, bogus pass
// pipelines), content-addressed cache hits/misses and their invalidation
// rules (source, config, pipeline, format version), corrupt disk entries
// falling back to a clean recompile, and the acceptance property that an
// artifact round trip simulates bit-identically to a fresh compile across
// layouts and vector widths.
//
//===----------------------------------------------------------------------===//

#include "compiler/CompileCache.h"
#include "compiler/CompilerDriver.h"
#include "models/Registry.h"
#include "sim/Simulator.h"
#include "support/Telemetry.h"

#include "gtest/gtest.h"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <unistd.h>

using namespace limpet;
using namespace limpet::compiler;
using namespace limpet::exec;

namespace {

const models::ModelEntry &entry(const char *Name) {
  const models::ModelEntry *E = models::findModel(Name);
  EXPECT_NE(E, nullptr) << Name;
  return *E;
}

/// Every cache-facing test starts from a clean process-wide cache with the
/// disk tier off, so LIMPET_CACHE_DIR in the environment cannot leak in.
void resetCache() {
  CompileCache::global().setDiskDir("");
  CompileCache::global().clearMemory();
}

CompilerDriver makeDriver(const EngineConfig &Cfg, bool UseCache = true) {
  DriverOptions Opts;
  Opts.Config = Cfg;
  Opts.UseCache = UseCache;
  return CompilerDriver(Opts);
}

/// Runs a short but nontrivial simulation and returns the full per-cell
/// state (plus Vm) for bitwise comparison.
std::vector<double> simulate(const CompiledModel &M) {
  sim::SimOptions Opts;
  Opts.NumCells = 19; // odd on purpose: exercises AoSoA tail padding
  Opts.NumSteps = 40;
  Opts.StimPeriod = 0.0;
  sim::Simulator S(M, Opts);
  S.run();
  std::vector<double> Out;
  for (int64_t C = 0; C != Opts.NumCells; ++C) {
    Out.push_back(S.vm(C));
    for (int64_t Sv = 0; Sv != int64_t(M.info().StateVars.size()); ++Sv)
      Out.push_back(S.stateOf(C, Sv));
  }
  Out.push_back(S.stateChecksum());
  return Out;
}

/// Bitwise equality (NaN-safe, unlike vector<double>::operator==).
bool bitIdentical(const std::vector<double> &A, const std::vector<double> &B) {
  if (A.size() != B.size())
    return false;
  for (size_t I = 0; I != A.size(); ++I) {
    uint64_t Ba, Bb;
    std::memcpy(&Ba, &A[I], 8);
    std::memcpy(&Bb, &B[I], 8);
    if (Ba != Bb)
      return false;
  }
  return true;
}

TEST(StageNames, RoundTripAndList) {
  for (unsigned I = 0; I != kNumStages; ++I) {
    Stage S = Stage(I);
    std::optional<Stage> Back = stageFromName(stageName(S));
    ASSERT_TRUE(Back.has_value()) << stageName(S);
    EXPECT_EQ(*Back, S);
  }
  EXPECT_FALSE(stageFromName("no-such-stage").has_value());
  EXPECT_NE(stageNameList().find("emit-bytecode"), std::string::npos);
  EXPECT_TRUE(isCodegenStage(Stage::EmitIR));
  EXPECT_TRUE(isCodegenStage(Stage::EmitBytecode));
  EXPECT_FALSE(isCodegenStage(Stage::LutAnalysis));
}

TEST(CompilerDriver, ColdCompileRecordsAllStages) {
  resetCache();
  CompilerDriver Driver = makeDriver(EngineConfig::limpetMLIR(4), false);
  CompileResult R = Driver.compileEntry(entry("HodgkinHuxley"));
  ASSERT_TRUE(bool(R)) << R.Err.message();
  EXPECT_FALSE(R.CacheHit);
  EXPECT_GT(R.TotalNs, 0u);
  // Every stage must appear, in pipeline order (Opt may repeat for the
  // vectorized clone).
  std::vector<Stage> Seen;
  for (const StageRecord &Rec : R.Stages)
    Seen.push_back(Rec.S);
  std::vector<Stage> Expect = {Stage::Frontend,  Stage::Preprocess,
                               Stage::Integrator, Stage::LutAnalysis,
                               Stage::EmitIR,     Stage::Opt,
                               Stage::Vectorize,  Stage::Opt,
                               Stage::EmitBytecode};
  EXPECT_EQ(Seen, Expect);
}

TEST(CompilerDriver, ScalarCompileSkipsVectorize) {
  resetCache();
  CompilerDriver Driver = makeDriver(EngineConfig::baseline(), false);
  CompileResult R = Driver.compileEntry(entry("HodgkinHuxley"));
  ASSERT_TRUE(bool(R)) << R.Err.message();
  for (const StageRecord &Rec : R.Stages)
    EXPECT_NE(Rec.S, Stage::Vectorize);
}

TEST(CompilerDriver, SnapshotsCaptureStageOutput) {
  resetCache();
  DriverOptions Opts;
  Opts.Config = EngineConfig::limpetMLIR(4);
  Opts.UseCache = false;
  Opts.SnapshotAll = true;
  CompilerDriver Driver(Opts);
  CompileResult R = Driver.compileEntry(entry("BeelerReuter"));
  ASSERT_TRUE(bool(R)) << R.Err.message();
  for (const StageRecord &Rec : R.Stages)
    EXPECT_FALSE(Rec.Snapshot.empty())
        << "missing snapshot after " << stageName(Rec.S);
  // The IR stages snapshot real IR; bytecode snapshots a disassembly.
  bool SawIR = false, SawBytecode = false;
  for (const StageRecord &Rec : R.Stages) {
    if (Rec.S == Stage::EmitIR)
      SawIR = Rec.Snapshot.find("func") != std::string::npos;
    if (Rec.S == Stage::EmitBytecode)
      SawBytecode = !Rec.Snapshot.empty();
  }
  EXPECT_TRUE(SawIR);
  EXPECT_TRUE(SawBytecode);
}

TEST(CompilerDriver, SelectiveSnapshot) {
  resetCache();
  DriverOptions Opts;
  Opts.Config = EngineConfig::baseline();
  Opts.UseCache = false;
  Opts.SnapshotStages = {Stage::Opt};
  CompilerDriver Driver(Opts);
  CompileResult R = Driver.compileEntry(entry("HodgkinHuxley"));
  ASSERT_TRUE(bool(R)) << R.Err.message();
  for (const StageRecord &Rec : R.Stages) {
    if (Rec.S == Stage::Opt)
      EXPECT_FALSE(Rec.Snapshot.empty());
    else
      EXPECT_TRUE(Rec.Snapshot.empty());
  }
}

TEST(CompilerDriver, FrontendErrorIsRecoverable) {
  resetCache();
  CompilerDriver Driver = makeDriver(EngineConfig::baseline(), false);
  CompileResult R = Driver.compileSource("Broken", "this is not easyml ((");
  EXPECT_FALSE(bool(R));
  EXPECT_NE(R.Err.message().find("frontend"), std::string::npos)
      << R.Err.message();
}

TEST(CompilerDriver, BogusPassPipelineIsRecoverable) {
  resetCache();
  EngineConfig Cfg = EngineConfig::limpetMLIR(4);
  Cfg.PassPipeline = "cse,definitely-not-a-pass,dce";
  CompilerDriver Driver = makeDriver(Cfg, false);
  CompileResult R = Driver.compileEntry(entry("HodgkinHuxley"));
  EXPECT_FALSE(bool(R));
  EXPECT_NE(R.Err.message().find("opt"), std::string::npos)
      << R.Err.message();
}

TEST(CompilerDriver, CustomPassPipelineCompilesAndRuns) {
  resetCache();
  EngineConfig Cfg = EngineConfig::limpetMLIR(4);
  Cfg.PassPipeline = "if-to-select,canonicalize,cse,licm,dce";
  CompilerDriver Driver = makeDriver(Cfg, false);
  CompileResult R = Driver.compileEntry(entry("HodgkinHuxley"));
  ASSERT_TRUE(bool(R)) << R.Err.message();
  // The custom pipeline is the default one spelled out, so the result
  // must simulate identically to the default-pipeline compile.
  CompilerDriver Default = makeDriver(EngineConfig::limpetMLIR(4), false);
  CompileResult D = Default.compileEntry(entry("HodgkinHuxley"));
  ASSERT_TRUE(bool(D)) << D.Err.message();
  EXPECT_TRUE(bitIdentical(simulate(*R.Model), simulate(*D.Model)));
}

TEST(CompileCacheKey, InvalidationRules) {
  EngineConfig Cfg = EngineConfig::limpetMLIR(8);
  const std::string Source = entry("HodgkinHuxley").Source;
  uint64_t Base = compileCacheKey(Source, Cfg);

  // Any source edit (even whitespace) changes the key.
  EXPECT_NE(compileCacheKey(Source + " ", Cfg), Base);

  // Any config field changes the key.
  EngineConfig C2 = Cfg;
  C2.Width = 4;
  EXPECT_NE(compileCacheKey(Source, C2), Base);
  C2 = Cfg;
  C2.EnableLuts = !C2.EnableLuts;
  EXPECT_NE(compileCacheKey(Source, C2), Base);
  C2 = Cfg;
  C2.Layout = codegen::StateLayout::AoS;
  EXPECT_NE(compileCacheKey(Source, C2), Base);

  // The pass pipeline string is part of the key.
  C2 = Cfg;
  C2.PassPipeline = "cse,dce";
  EXPECT_NE(compileCacheKey(Source, C2), Base);

  // Same inputs, same key (it is a pure content address).
  EXPECT_EQ(compileCacheKey(Source, Cfg), Base);
}

TEST(CompileCache, MemoryHitSkipsCodegenStages) {
  resetCache();
  CompilerDriver Driver = makeDriver(EngineConfig::limpetMLIR(8));
  CompileResult Cold = Driver.compileEntry(entry("HodgkinHuxley"));
  ASSERT_TRUE(bool(Cold)) << Cold.Err.message();
  EXPECT_FALSE(Cold.CacheHit);
  EXPECT_EQ(CompileCache::global().memorySize(), 1u);

  uint64_t EmitBefore =
      telemetry::Registry::instance().value("compile.stage.emit-ir.count");
  CompileResult Warm = Driver.compileEntry(entry("HodgkinHuxley"));
  ASSERT_TRUE(bool(Warm)) << Warm.Err.message();
  EXPECT_TRUE(Warm.CacheHit);
  EXPECT_FALSE(Warm.DiskHit);
  EXPECT_EQ(Warm.CacheKey, Cold.CacheKey);
  // Zero codegen work on the warm path: no emit-ir stage ran, and the
  // stage records stop after lut-analysis.
  EXPECT_EQ(telemetry::Registry::instance().value("compile.stage.emit-ir.count"),
            EmitBefore);
  for (const StageRecord &Rec : Warm.Stages)
    EXPECT_FALSE(isCodegenStage(Rec.S))
        << "warm compile ran codegen stage " << stageName(Rec.S);
  // And the warm model is bit-identical in simulation.
  EXPECT_TRUE(bitIdentical(simulate(*Cold.Model), simulate(*Warm.Model)));
}

TEST(CompileCache, DifferentConfigMisses) {
  resetCache();
  CompilerDriver D8 = makeDriver(EngineConfig::limpetMLIR(8));
  ASSERT_TRUE(bool(D8.compileEntry(entry("HodgkinHuxley"))));
  CompilerDriver D4 = makeDriver(EngineConfig::limpetMLIR(4));
  CompileResult R = D4.compileEntry(entry("HodgkinHuxley"));
  ASSERT_TRUE(bool(R)) << R.Err.message();
  EXPECT_FALSE(R.CacheHit) << "width change must be a cache miss";
  EXPECT_EQ(CompileCache::global().memorySize(), 2u);
}

TEST(CompileCache, DiskTierWarmStartAndCorruptFallback) {
  resetCache();
  std::string Dir = ::testing::TempDir() + "limpet-cache-" +
                    std::to_string(::getpid());
  std::filesystem::create_directories(Dir);
  CompileCache::global().setDiskDir(Dir);

  CompilerDriver Driver = makeDriver(EngineConfig::limpetMLIR(4));
  CompileResult Cold = Driver.compileEntry(entry("BeelerReuter"));
  ASSERT_TRUE(bool(Cold)) << Cold.Err.message();
  std::string Path = CompileCache::global().diskPath(Cold.CacheKey);
  ASSERT_FALSE(Path.empty());
  EXPECT_TRUE(std::filesystem::exists(Path)) << Path;

  // Simulate a fresh process: memory tier empty, disk tier warm.
  CompileCache::global().clearMemory();
  CompileResult Warm = Driver.compileEntry(entry("BeelerReuter"));
  ASSERT_TRUE(bool(Warm)) << Warm.Err.message();
  EXPECT_TRUE(Warm.CacheHit);
  EXPECT_TRUE(Warm.DiskHit);
  EXPECT_TRUE(bitIdentical(simulate(*Cold.Model), simulate(*Warm.Model)));

  // Corrupt the disk entry: the next cold start must fall back to a clean
  // recompile (a miss, not an error), then overwrite the bad entry.
  CompileCache::global().clearMemory();
  {
    std::ofstream F(Path, std::ios::binary | std::ios::trunc);
    F << "garbage";
  }
  CompileResult Recovered = Driver.compileEntry(entry("BeelerReuter"));
  ASSERT_TRUE(bool(Recovered)) << Recovered.Err.message();
  EXPECT_FALSE(Recovered.CacheHit);
  EXPECT_TRUE(bitIdentical(simulate(*Cold.Model), simulate(*Recovered.Model)));

  // Truncated (zero-byte) entry behaves the same.
  CompileCache::global().clearMemory();
  {
    std::ofstream F(Path, std::ios::binary | std::ios::trunc);
  }
  CompileResult Again = Driver.compileEntry(entry("BeelerReuter"));
  ASSERT_TRUE(bool(Again)) << Again.Err.message();
  EXPECT_FALSE(Again.CacheHit);

  resetCache();
  std::filesystem::remove_all(Dir);
}

TEST(CompileSuite, ParallelResultsArePositional) {
  resetCache();
  std::vector<const models::ModelEntry *> Entries = {
      &entry("HodgkinHuxley"), &entry("BeelerReuter"), &entry("Plonsey"),
      &entry("ISAC_Hu")};
  CompilerDriver Driver = makeDriver(EngineConfig::limpetMLIR(8));
  std::vector<CompileResult> Results = Driver.compileSuite(Entries);
  ASSERT_EQ(Results.size(), Entries.size());
  for (size_t I = 0; I != Results.size(); ++I) {
    ASSERT_TRUE(bool(Results[I]))
        << Entries[I]->Name << ": " << Results[I].Err.message();
    EXPECT_EQ(Results[I].ModelName, Entries[I]->Name);
  }
}

TEST(ArtifactLoad, BitIdenticalAcrossLayoutsAndWidths) {
  // The acceptance property: compile -> serialize -> deserialize -> load
  // simulates bit-identically to the fresh compile, for every layout x
  // width combination the engine supports.
  resetCache();
  const models::ModelEntry &E = entry("BeelerReuter");
  std::vector<EngineConfig> Configs = {
      EngineConfig::baseline(),    EngineConfig::limpetMLIR(2),
      EngineConfig::limpetMLIR(4), EngineConfig::limpetMLIR(8),
      EngineConfig::autoVecLike(4)};
  for (const EngineConfig &Cfg : Configs) {
    CompilerDriver Driver = makeDriver(Cfg, false);
    CompileResult Fresh = Driver.compileEntry(E);
    ASSERT_TRUE(bool(Fresh)) << engineConfigName(Cfg) << ": "
                             << Fresh.Err.message();
    Artifact A =
        CompilerDriver::makeArtifact(*Fresh.Model, E.Name, Fresh.SourceHash);
    Expected<Artifact> B = deserializeArtifact(serializeArtifact(A));
    ASSERT_TRUE(bool(B)) << B.status().message();
    CompileResult Loaded = Driver.loadArtifact(*B, E.Name, E.Source);
    ASSERT_TRUE(bool(Loaded)) << engineConfigName(Cfg) << ": "
                              << Loaded.Err.message();
    EXPECT_TRUE(Loaded.CacheHit);
    for (const StageRecord &Rec : Loaded.Stages)
      EXPECT_FALSE(isCodegenStage(Rec.S));
    EXPECT_TRUE(bitIdentical(simulate(*Fresh.Model), simulate(*Loaded.Model)))
        << "artifact simulation diverged under " << engineConfigName(Cfg);
  }
}

TEST(ArtifactLoad, RejectsWrongSourceOrName) {
  resetCache();
  const models::ModelEntry &E = entry("HodgkinHuxley");
  CompilerDriver Driver = makeDriver(EngineConfig::baseline(), false);
  CompileResult Fresh = Driver.compileEntry(E);
  ASSERT_TRUE(bool(Fresh)) << Fresh.Err.message();
  Artifact A =
      CompilerDriver::makeArtifact(*Fresh.Model, E.Name, Fresh.SourceHash);

  CompileResult WrongSource =
      Driver.loadArtifact(A, E.Name, entry("BeelerReuter").Source);
  EXPECT_FALSE(bool(WrongSource));
  EXPECT_NE(WrongSource.Err.message().find("hash"), std::string::npos)
      << WrongSource.Err.message();

  CompileResult WrongName = Driver.loadArtifact(A, "BeelerReuter", E.Source);
  EXPECT_FALSE(bool(WrongName));
  EXPECT_NE(WrongName.Err.message().find("model"), std::string::npos)
      << WrongName.Err.message();
}

TEST(ArtifactLoad, RejectsTamperedProgram) {
  resetCache();
  const models::ModelEntry &E = entry("HodgkinHuxley");
  CompilerDriver Driver = makeDriver(EngineConfig::baseline(), false);
  CompileResult Fresh = Driver.compileEntry(E);
  ASSERT_TRUE(bool(Fresh)) << Fresh.Err.message();
  Artifact A =
      CompilerDriver::makeArtifact(*Fresh.Model, E.Name, Fresh.SourceHash);
  // A structurally valid but inconsistent artifact (wrong state count for
  // this model) must be rejected by assembly validation.
  A.Program.NumSv += 1;
  CompileResult R = Driver.loadArtifact(A, E.Name, E.Source);
  EXPECT_FALSE(bool(R));
  EXPECT_NE(R.Err.message().find("artifact"), std::string::npos)
      << R.Err.message();
}

} // namespace
