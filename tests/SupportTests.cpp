//===- SupportTests.cpp - support/ unit tests ------------------------------===//

#include "support/Casting.h"
#include "support/Diagnostics.h"
#include "support/StringUtils.h"

#include <gtest/gtest.h>

using namespace limpet;

namespace {

// A tiny class hierarchy exercising the casting utilities.
struct Animal {
  enum class Kind { Cat, Dog };
  explicit Animal(Kind K) : TheKind(K) {}
  Kind kind() const { return TheKind; }

private:
  Kind TheKind;
};

struct Cat : Animal {
  Cat() : Animal(Kind::Cat) {}
  static bool classof(const Animal *A) { return A->kind() == Kind::Cat; }
};

struct Dog : Animal {
  Dog() : Animal(Kind::Dog) {}
  static bool classof(const Animal *A) { return A->kind() == Kind::Dog; }
};

TEST(Casting, IsaAndDynCast) {
  Cat C;
  Animal *A = &C;
  EXPECT_TRUE(isa<Cat>(A));
  EXPECT_FALSE(isa<Dog>(A));
  EXPECT_TRUE((isa<Dog, Cat>(A)));
  EXPECT_EQ(dyn_cast<Cat>(A), &C);
  EXPECT_EQ(dyn_cast<Dog>(A), nullptr);
  EXPECT_EQ(cast<Cat>(A), &C);
}

TEST(Casting, DynCastIfPresent) {
  Animal *Null = nullptr;
  EXPECT_EQ(dyn_cast_if_present<Cat>(Null), nullptr);
  Dog D;
  Animal *A = &D;
  EXPECT_EQ(dyn_cast_if_present<Dog>(A), &D);
}

TEST(Diagnostics, CollectsAndRenders) {
  DiagnosticEngine Diags;
  EXPECT_FALSE(Diags.hasErrors());
  Diags.warning({1, 2}, "something odd");
  EXPECT_FALSE(Diags.hasErrors());
  Diags.error({3, 4}, "something wrong");
  EXPECT_TRUE(Diags.hasErrors());
  EXPECT_EQ(Diags.errorCount(), 1u);
  std::string Text = Diags.str();
  EXPECT_NE(Text.find("1:2: warning: something odd"), std::string::npos);
  EXPECT_NE(Text.find("3:4: error: something wrong"), std::string::npos);
}

TEST(Diagnostics, UnknownLocation) {
  Diagnostic D;
  D.Message = "msg";
  EXPECT_EQ(D.str(), "error: msg");
}

TEST(StringUtils, FormatDoubleRoundTrips) {
  for (double V : {0.0, 1.0, -1.5, 0.1, 3.141592653589793, 1e-300, 1e300}) {
    std::string S = formatDouble(V);
    double Back = 0;
    std::sscanf(S.c_str(), "%lf", &Back);
    EXPECT_EQ(Back, V) << S;
  }
}

TEST(StringUtils, FormatDoublePicksShortForm) {
  EXPECT_EQ(formatDouble(0.5), "0.5");
  EXPECT_EQ(formatDouble(2.0), "2");
}

TEST(StringUtils, Padding) {
  EXPECT_EQ(padLeft("ab", 4), "  ab");
  EXPECT_EQ(padRight("ab", 4), "ab  ");
  EXPECT_EQ(padLeft("abcdef", 4), "abcdef");
}

TEST(StringUtils, SplitString) {
  auto Parts = splitString("a,b,,c", ',');
  ASSERT_EQ(Parts.size(), 4u);
  EXPECT_EQ(Parts[0], "a");
  EXPECT_EQ(Parts[2], "");
  EXPECT_EQ(Parts[3], "c");
}

TEST(StringUtils, StartsEndsWith) {
  EXPECT_TRUE(startsWith("diff_u1", "diff_"));
  EXPECT_FALSE(startsWith("u1", "diff_"));
  EXPECT_TRUE(endsWith("u1_init", "_init"));
  EXPECT_FALSE(endsWith("init", "_init"));
}

} // namespace
