//===- SymbolicDiffTests.cpp - easyml/SymbolicDiff unit tests -----------------===//

#include "easyml/ConstEval.h"
#include "easyml/Parser.h"
#include "easyml/SymbolicDiff.h"

#include <cmath>
#include <gtest/gtest.h>

using namespace limpet;
using namespace limpet::easyml;

namespace {

ExprPtr parseRhs(std::string_view Rhs) {
  DiagnosticEngine Diags;
  ParsedModel PM = parseModel("t", "e = " + std::string(Rhs) + ";", Diags);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  EXPECT_EQ(PM.Statements.size(), 1u);
  return PM.Statements[0]->Value;
}

/// Numerically checks d(Expr)/dx at several points against a central
/// difference.
void checkDerivative(std::string_view Rhs,
                     std::initializer_list<double> Points,
                     double Tol = 1e-6) {
  ExprPtr E = parseRhs(Rhs);
  ExprPtr D = differentiate(E, "x");
  for (double X : Points) {
    auto Env = [&](double Xv) {
      return [Xv](std::string_view Name) -> std::optional<double> {
        if (Name == "x")
          return Xv;
        if (Name == "y")
          return 0.7;
        return std::nullopt;
      };
    };
    const double H = 1e-6;
    auto Lo = evalExpr(*E, Env(X - H));
    auto Hi = evalExpr(*E, Env(X + H));
    auto Sym = evalExpr(*D, Env(X));
    ASSERT_TRUE(Lo && Hi && Sym) << Rhs;
    double Numeric = (*Hi - *Lo) / (2 * H);
    EXPECT_NEAR(*Sym, Numeric,
                Tol * std::max(1.0, std::fabs(Numeric)))
        << Rhs << " at x=" << X;
  }
}

TEST(SymbolicDiff, Polynomials) {
  checkDerivative("x*x + 3.0*x + 1.0", {-2.0, 0.0, 1.5});
  checkDerivative("square(x) - cube(x)", {-1.0, 0.5, 2.0});
  checkDerivative("(x + 1.0)*(x - 2.0)", {0.0, 3.0});
}

TEST(SymbolicDiff, Quotients) {
  checkDerivative("1.0/(x + 2.0)", {0.0, 1.0, 5.0});
  checkDerivative("x/(x*x + 1.0)", {-1.0, 0.0, 2.0});
}

TEST(SymbolicDiff, Exponentials) {
  checkDerivative("exp(2.0*x)", {-1.0, 0.0, 1.0});
  checkDerivative("exp(-x*x)", {-0.5, 0.5});
  checkDerivative("expm1(x)", {-0.5, 0.5});
  checkDerivative("log(x + 3.0)", {0.0, 2.0});
  checkDerivative("log10(x + 3.0)", {0.0, 2.0});
}

TEST(SymbolicDiff, TrigAndHyperbolic) {
  checkDerivative("sin(x) + cos(2.0*x)", {-1.0, 0.3, 2.0});
  checkDerivative("tan(x)", {-0.5, 0.5});
  checkDerivative("tanh(3.0*x)", {-1.0, 0.2});
  checkDerivative("sinh(x) - cosh(x)", {-0.5, 0.5});
  checkDerivative("atan(x)", {-2.0, 0.0, 2.0});
  checkDerivative("asin(x/2.0)", {-0.8, 0.0, 0.8});
  checkDerivative("acos(x/2.0)", {-0.8, 0.0, 0.8});
}

TEST(SymbolicDiff, SqrtAndAbs) {
  checkDerivative("sqrt(x + 4.0)", {0.0, 5.0});
  checkDerivative("fabs(x)", {-2.0, 3.0}); // away from the kink
}

TEST(SymbolicDiff, PowConstantExponent) {
  checkDerivative("pow(x + 3.0, 2.5)", {0.0, 1.0});
}

TEST(SymbolicDiff, PowGeneral) {
  checkDerivative("pow(x + 3.0, x*0.2 + 1.0)", {0.0, 1.0});
}

TEST(SymbolicDiff, TernaryDifferentiatesArms) {
  checkDerivative("(x < 0.0) ? x*x : 2.0*x", {-1.0, 1.0});
}

TEST(SymbolicDiff, OtherVariablesAreConstants) {
  ExprPtr E = parseRhs("y*x + y*y");
  ExprPtr D = differentiate(E, "x");
  // d/dx = y.
  auto V = evalExpr(*D, [](std::string_view N) -> std::optional<double> {
    if (N == "x")
      return 4.0;
    if (N == "y")
      return 3.0;
    return std::nullopt;
  });
  ASSERT_TRUE(V.has_value());
  EXPECT_DOUBLE_EQ(*V, 3.0);
}

TEST(SymbolicDiff, ConstantSubtreeGivesZero) {
  ExprPtr E = parseRhs("exp(y) + 5.0");
  ExprPtr D = differentiate(E, "x");
  EXPECT_TRUE(D->isNumber(0.0));
}

TEST(SymbolicDiff, GateFormLinearInGate) {
  // The Rush-Larsen precondition: d/dg [a*(1-g) - b*g] = -(a+b), constant
  // in g.
  ExprPtr E = parseRhs("y*(1.0 - x) - 0.5*x");
  ExprPtr D = differentiate(E, "x");
  EXPECT_FALSE(exprReferences(*D, "x"));
  auto V = evalExpr(*D, [](std::string_view N) -> std::optional<double> {
    return N == "y" ? std::optional<double>(2.0) : std::nullopt;
  });
  EXPECT_DOUBLE_EQ(*V, -2.5);
}

TEST(SymbolicDiff, FloorCeilDeriveToZero) {
  EXPECT_TRUE(differentiate(parseRhs("floor(x)"), "x")->isNumber(0.0));
  EXPECT_TRUE(differentiate(parseRhs("ceil(x)"), "x")->isNumber(0.0));
}

} // namespace
