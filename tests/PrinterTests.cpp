//===- PrinterTests.cpp - ir/Printer golden tests ----------------------------===//

#include "dialects/Dialects.h"
#include "ir/Printer.h"

#include <gtest/gtest.h>

using namespace limpet;
using namespace limpet::ir;

namespace {

TEST(Printer, TrivialFunction) {
  Context Ctx;
  auto Func = makeFunction(Ctx, "f", {Ctx.f64()});
  OpBuilder B(Ctx);
  B.setInsertionPointToEnd(&funcBody(Func.get()));
  Value *C = makeConstantF(B, 2.5);
  makeAddF(B, funcBody(Func.get()).argument(0), C);
  makeReturn(B);

  EXPECT_EQ(printOp(Func.get()),
            "func.func @f(%arg0: f64) {\n"
            "  %0 = arith.constant {value = 2.5} : f64\n"
            "  %1 = arith.addf %arg0, %0 : f64\n"
            "  func.return\n"
            "}\n");
}

TEST(Printer, ForLoopSyntax) {
  Context Ctx;
  auto Func = makeFunction(Ctx, "loop", {Ctx.i64(), Ctx.i64()});
  Block &Body = funcBody(Func.get());
  OpBuilder B(Ctx);
  B.setInsertionPointToEnd(&Body);
  Value *Step = makeConstantI(B, 2);
  Operation *For = makeFor(B, Body.argument(0), Body.argument(1), Step);
  OpBuilder LB(Ctx);
  LB.setInsertionPointToEnd(&forBody(For));
  makeYield(LB, {});
  makeReturn(B);

  std::string Out = printOp(Func.get());
  EXPECT_NE(Out.find("scf.for %arg2 = %arg0 to %arg1 step %0 {"),
            std::string::npos)
      << Out;
  EXPECT_NE(Out.find("scf.yield"), std::string::npos);
}

TEST(Printer, AttributesAndMultiResult) {
  Context Ctx;
  auto Func = makeFunction(Ctx, "luts", {Ctx.f64()});
  Block &Body = funcBody(Func.get());
  OpBuilder B(Ctx);
  B.setInsertionPointToEnd(&Body);
  Operation *Coord = makeLutCoord(B, Body.argument(0), 3);
  makeLutInterp(B, Coord->result(0), Coord->result(1), 3, 7);
  makeReturn(B);

  std::string Out = printOp(Func.get());
  EXPECT_NE(Out.find("%0, %1 = lut.coord %arg0 {table = 3} : i64, f64"),
            std::string::npos)
      << Out;
  EXPECT_NE(Out.find("lut.interp %0, %1 {table = 3, col = 7} : f64"),
            std::string::npos)
      << Out;
}

TEST(Printer, VectorTypes) {
  Context Ctx;
  auto Func = makeFunction(Ctx, "v", {Ctx.memref(), Ctx.i64()});
  Block &Body = funcBody(Func.get());
  OpBuilder B(Ctx);
  B.setInsertionPointToEnd(&Body);
  Value *V = makeVecLoad(B, Body.argument(0), Body.argument(1), 8);
  makeVecStore(B, V, Body.argument(0), Body.argument(1));
  makeReturn(B);

  std::string Out = printOp(Func.get());
  EXPECT_NE(Out.find("vector.load %arg0, %arg1 : vector<8xf64>"),
            std::string::npos)
      << Out;
  EXPECT_NE(Out.find("vector.store %0, %arg0, %arg1"), std::string::npos)
      << Out;
}

TEST(Printer, ModulePrintsAllFunctions) {
  Context Ctx;
  Module M;
  for (const char *Name : {"a", "b"}) {
    auto F = makeFunction(Ctx, Name, {});
    OpBuilder B(Ctx);
    B.setInsertionPointToEnd(&funcBody(F.get()));
    makeReturn(B);
    M.addFunction(std::move(F));
  }
  std::string Out = printModule(M);
  EXPECT_NE(Out.find("func.func @a()"), std::string::npos);
  EXPECT_NE(Out.find("func.func @b()"), std::string::npos);
}

} // namespace
