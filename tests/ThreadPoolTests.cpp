//===- ThreadPoolTests.cpp - runtime/ThreadPool unit tests ---------------------===//

#include "runtime/ThreadPool.h"

#include <atomic>
#include <gtest/gtest.h>
#include <numeric>

using namespace limpet::runtime;

namespace {

TEST(StaticChunk, PartitionsEvenly) {
  int64_t B, E;
  ThreadPool::staticChunk(0, 100, 0, 4, B, E);
  EXPECT_EQ(B, 0);
  EXPECT_EQ(E, 25);
  ThreadPool::staticChunk(0, 100, 3, 4, B, E);
  EXPECT_EQ(B, 75);
  EXPECT_EQ(E, 100);
}

TEST(StaticChunk, DistributesRemainderToFirstChunks) {
  // 10 elements over 4 threads: 3,3,2,2.
  int64_t Sizes[4];
  for (unsigned I = 0; I != 4; ++I) {
    int64_t B, E;
    ThreadPool::staticChunk(0, 10, I, 4, B, E);
    Sizes[I] = E - B;
  }
  EXPECT_EQ(Sizes[0], 3);
  EXPECT_EQ(Sizes[1], 3);
  EXPECT_EQ(Sizes[2], 2);
  EXPECT_EQ(Sizes[3], 2);
}

TEST(StaticChunk, CoversRangeExactlyOnce) {
  for (int64_t N : {1, 7, 31, 100, 8192}) {
    for (unsigned T : {1u, 2u, 3u, 8u, 32u}) {
      int64_t Covered = 0;
      int64_t PrevEnd = 0;
      for (unsigned I = 0; I != T; ++I) {
        int64_t B, E;
        ThreadPool::staticChunk(0, N, I, T, B, E);
        EXPECT_EQ(B, PrevEnd);
        EXPECT_LE(B, E);
        Covered += E - B;
        PrevEnd = E;
      }
      EXPECT_EQ(Covered, N) << "N=" << N << " T=" << T;
      EXPECT_EQ(PrevEnd, N);
    }
  }
}

TEST(ThreadPool, ExecutesAllElements) {
  ThreadPool Pool(8);
  std::vector<std::atomic<int>> Hits(1000);
  Pool.parallelFor(0, 1000, 8, [&](int64_t B, int64_t E) {
    for (int64_t I = B; I != E; ++I)
      Hits[size_t(I)]++;
  });
  for (auto &H : Hits)
    EXPECT_EQ(H.load(), 1);
}

TEST(ThreadPool, SingleThreadRunsInline) {
  ThreadPool Pool(4);
  std::thread::id Caller = std::this_thread::get_id();
  std::thread::id Executor;
  Pool.parallelFor(0, 10, 1,
                   [&](int64_t, int64_t) { Executor = std::this_thread::get_id(); });
  EXPECT_EQ(Executor, Caller);
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  ThreadPool Pool(4);
  bool Ran = false;
  Pool.parallelFor(5, 5, 4, [&](int64_t, int64_t) { Ran = true; });
  EXPECT_FALSE(Ran);
}

TEST(ThreadPool, ClampsThreadCount) {
  ThreadPool Pool(2);
  std::atomic<int64_t> Sum{0};
  Pool.parallelFor(0, 100, 64, [&](int64_t B, int64_t E) {
    Sum += E - B;
  });
  EXPECT_EQ(Sum.load(), 100);
}

TEST(ThreadPool, ReusableAcrossManyInvocations) {
  ThreadPool Pool(4);
  std::atomic<int64_t> Total{0};
  for (int Round = 0; Round != 200; ++Round)
    Pool.parallelFor(0, 64, 4, [&](int64_t B, int64_t E) {
      Total += E - B;
    });
  EXPECT_EQ(Total.load(), 200 * 64);
}

TEST(ThreadPool, MoreThreadsThanElements) {
  ThreadPool Pool(8);
  std::atomic<int64_t> Sum{0};
  Pool.parallelFor(0, 3, 8, [&](int64_t B, int64_t E) { Sum += E - B; });
  EXPECT_EQ(Sum.load(), 3);
}

TEST(ThreadPool, GlobalPoolProvides32Way) {
  EXPECT_EQ(globalThreadPool().maxThreads(), 32u);
}

} // namespace
