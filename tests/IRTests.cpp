//===- IRTests.cpp - ir/ structural unit tests ------------------------------===//

#include "support/Casting.h"
#include "dialects/Dialects.h"
#include "ir/Builder.h"
#include "ir/Context.h"
#include "ir/IR.h"

#include <gtest/gtest.h>

using namespace limpet;
using namespace limpet::ir;

namespace {

TEST(Types, UniquingAndQueries) {
  Context Ctx;
  EXPECT_TRUE(Ctx.f64().isF64());
  EXPECT_TRUE(Ctx.i1().isI1());
  EXPECT_TRUE(Ctx.i64().isI64());
  EXPECT_TRUE(Ctx.memref().isMemRef());

  Type V8 = Ctx.vecF64(8);
  EXPECT_TRUE(V8.isVector());
  EXPECT_TRUE(V8.isFloatLike());
  EXPECT_EQ(V8.vectorWidth(), 8u);
  EXPECT_EQ(V8, Ctx.vecF64(8));
  EXPECT_NE(V8, Ctx.vecF64(4));
  EXPECT_NE(V8, Ctx.vecI1(8));
  EXPECT_TRUE(Ctx.vecI1(4).isBoolLike());
  EXPECT_TRUE(Ctx.vecI64(2).isIntLike());
}

TEST(Types, ScalarAndVectorConversions) {
  Context Ctx;
  EXPECT_EQ(Ctx.scalarTypeOf(Ctx.vecF64(4)), Ctx.f64());
  EXPECT_EQ(Ctx.scalarTypeOf(Ctx.vecI1(2)), Ctx.i1());
  EXPECT_EQ(Ctx.scalarTypeOf(Ctx.f64()), Ctx.f64());
  EXPECT_EQ(Ctx.vectorTypeOf(Ctx.f64(), 8), Ctx.vecF64(8));
  EXPECT_EQ(Ctx.vectorTypeOf(Ctx.i1(), 2), Ctx.vecI1(2));
}

TEST(Types, Printing) {
  Context Ctx;
  EXPECT_EQ(Ctx.f64().str(), "f64");
  EXPECT_EQ(Ctx.i1().str(), "i1");
  EXPECT_EQ(Ctx.vecF64(8).str(), "vector<8xf64>");
  EXPECT_EQ(Ctx.vecI1(4).str(), "vector<4xi1>");
  EXPECT_EQ(Ctx.memref().str(), "memref<?xf64>");
}

TEST(Attributes, PayloadsAndEquality) {
  Attribute F = Attribute::makeFloat(2.5);
  EXPECT_EQ(F.asFloat(), 2.5);
  EXPECT_EQ(F, Attribute::makeFloat(2.5));
  EXPECT_NE(F, Attribute::makeFloat(2.0));
  EXPECT_NE(F, Attribute::makeInt(2));

  Attribute I = Attribute::makeInt(42);
  EXPECT_EQ(I.asInt(), 42);
  Attribute S = Attribute::makeString("hello");
  EXPECT_EQ(S.asString(), "hello");
  Attribute B = Attribute::makeBool(true);
  EXPECT_TRUE(B.asBool());
  EXPECT_FALSE(Attribute());
  EXPECT_TRUE(bool(F));
}

TEST(Attributes, HashDistinguishesKinds) {
  EXPECT_NE(Attribute::makeFloat(1.0).hash(), Attribute::makeInt(1).hash());
  EXPECT_EQ(Attribute::makeString("x").hash(),
            Attribute::makeString("x").hash());
}

TEST(Operation, OperandsResultsAttrs) {
  Context Ctx;
  OpBuilder B(Ctx);
  Value *C1 = makeConstantF(B, 1.0);
  Value *C2 = makeConstantF(B, 2.0);
  Value *Sum = makeAddF(B, C1, C2);
  Operation *Op = static_cast<OpResult *>(Sum)->owner();
  EXPECT_EQ(Op->opcode(), OpCode::ArithAddF);
  EXPECT_EQ(Op->numOperands(), 2u);
  EXPECT_EQ(Op->operand(0), C1);
  EXPECT_EQ(Op->numResults(), 1u);
  EXPECT_EQ(Op->result()->type(), Ctx.f64());
  EXPECT_FALSE(Op->hasAttr("nope"));
  Op->setAttr("note", Attribute::makeString("x"));
  EXPECT_EQ(Op->attr("note").asString(), "x");
  // Ops created without an insertion block are detached; clean up.
  delete Op;
  delete cast<OpResult>(C1)->owner();
  delete cast<OpResult>(C2)->owner();
}

TEST(Function, BodyAndArguments) {
  Context Ctx;
  auto Func =
      makeFunction(Ctx, "f", {Ctx.memref(), Ctx.i64(), Ctx.f64()});
  Block &Body = funcBody(Func.get());
  EXPECT_EQ(Body.numArguments(), 3u);
  EXPECT_TRUE(Body.argument(0)->type().isMemRef());
  EXPECT_TRUE(Body.argument(2)->type().isF64());
  EXPECT_EQ(Func->attr("sym_name").asString(), "f");
}

TEST(Block, InsertRemoveErase) {
  Context Ctx;
  auto Func = makeFunction(Ctx, "f", {});
  Block &Body = funcBody(Func.get());
  OpBuilder B(Ctx);
  B.setInsertionPointToEnd(&Body);
  Value *C1 = makeConstantF(B, 1.0);
  Value *C2 = makeConstantF(B, 2.0);
  Operation *Op1 = cast<OpResult>(C1)->owner();
  Operation *Op2 = cast<OpResult>(C2)->owner();
  EXPECT_EQ(Body.ops().size(), 2u);
  EXPECT_EQ(Body.ops().front(), Op1);

  // insertBefore places an op ahead of an anchor.
  Operation *Det = OpBuilder::createDetached(OpCode::ArithConstantF, {},
                                             {Ctx.f64()});
  Det->setAttr("value", Attribute::makeFloat(3.0));
  Body.insertBefore(Op1, Det);
  EXPECT_EQ(Body.ops().front(), Det);

  // remove detaches without deleting.
  Body.remove(Det);
  EXPECT_EQ(Body.ops().size(), 2u);
  EXPECT_EQ(Det->parentBlock(), nullptr);
  delete Det;

  Body.erase(Op2);
  EXPECT_EQ(Body.ops().size(), 1u);
}

TEST(Region, ForLoopStructure) {
  Context Ctx;
  auto Func = makeFunction(Ctx, "f", {Ctx.i64(), Ctx.i64()});
  Block &Body = funcBody(Func.get());
  OpBuilder B(Ctx);
  B.setInsertionPointToEnd(&Body);
  Value *Step = makeConstantI(B, 1);
  Operation *For = makeFor(B, Body.argument(0), Body.argument(1), Step);
  EXPECT_EQ(For->numRegions(), 1u);
  Block &Loop = forBody(For);
  EXPECT_EQ(Loop.numArguments(), 1u);
  EXPECT_TRUE(Loop.argument(0)->type().isI64());
  EXPECT_EQ(Loop.parentOp(), For);
  EXPECT_EQ(For->parentBlock(), &Body);
}

TEST(Operation, WalkVisitsNestedOps) {
  Context Ctx;
  auto Func = makeFunction(Ctx, "f", {Ctx.i64(), Ctx.i64()});
  Block &Body = funcBody(Func.get());
  OpBuilder B(Ctx);
  B.setInsertionPointToEnd(&Body);
  Value *Step = makeConstantI(B, 1);
  Operation *For = makeFor(B, Body.argument(0), Body.argument(1), Step);
  OpBuilder BodyB(Ctx);
  BodyB.setInsertionPointToEnd(&forBody(For));
  makeConstantF(BodyB, 7.0);
  makeYield(BodyB, {});
  makeReturn(B);

  int Count = 0;
  Func->walk([&](Operation *) { ++Count; });
  // func + constant_int + for + (constant + yield) + return.
  EXPECT_EQ(Count, 6);
}

TEST(Operation, ReplaceUsesOfWith) {
  Context Ctx;
  auto Func = makeFunction(Ctx, "f", {});
  Block &Body = funcBody(Func.get());
  OpBuilder B(Ctx);
  B.setInsertionPointToEnd(&Body);
  Value *C1 = makeConstantF(B, 1.0);
  Value *C2 = makeConstantF(B, 2.0);
  Value *Sum = makeAddF(B, C1, C1);
  Operation *SumOp = cast<OpResult>(Sum)->owner();
  Func->replaceUsesOfWith(C1, C2);
  EXPECT_EQ(SumOp->operand(0), C2);
  EXPECT_EQ(SumOp->operand(1), C2);
}

TEST(Module, LookupFunction) {
  Context Ctx;
  Module M;
  M.addFunction(makeFunction(Ctx, "a", {}));
  M.addFunction(makeFunction(Ctx, "b", {}));
  EXPECT_NE(M.lookupFunction("a"), nullptr);
  EXPECT_NE(M.lookupFunction("b"), nullptr);
  EXPECT_EQ(M.lookupFunction("c"), nullptr);
  EXPECT_EQ(M.functions().size(), 2u);
}

TEST(Dialects, TypedBuildersInferTypes) {
  Context Ctx;
  auto Func = makeFunction(Ctx, "f", {Ctx.memref(), Ctx.i64()});
  Block &Body = funcBody(Func.get());
  OpBuilder B(Ctx);
  B.setInsertionPointToEnd(&Body);

  Value *X = makeMemLoad(B, Body.argument(0), Body.argument(1));
  EXPECT_TRUE(X->type().isF64());

  Value *Cmp = makeCmpF(B, CmpPredicate::LT, X, makeConstantF(B, 0.0));
  EXPECT_TRUE(Cmp->type().isI1());

  Value *Sel = makeSelect(B, Cmp, X, makeConstantF(B, 1.0));
  EXPECT_TRUE(Sel->type().isF64());

  Value *Bc = makeBroadcast(B, X, 8);
  EXPECT_EQ(Bc->type(), Ctx.vecF64(8));

  Value *VecCmp = makeCmpF(B, CmpPredicate::GT, Bc, Bc);
  EXPECT_EQ(VecCmp->type(), Ctx.vecI1(8));

  Value *G = makeVecGather(B, Body.argument(0), Body.argument(1), 7, 4);
  EXPECT_EQ(G->type(), Ctx.vecF64(4));
  EXPECT_EQ(cast<OpResult>(G)->owner()->attr("stride").asInt(), 7);

  Operation *Coord = makeLutCoord(B, Bc, 0);
  EXPECT_EQ(Coord->result(0)->type(), Ctx.vecI64(8));
  EXPECT_EQ(Coord->result(1)->type(), Ctx.vecF64(8));
}

} // namespace
