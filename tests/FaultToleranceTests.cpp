//===- FaultToleranceTests.cpp - Guard-rail recovery path tests -----------===//
//
// Fault-injection unit tests for the Simulator's numerical guard rails
// (docs/ROBUSTNESS.md): health-scan detection, checkpoint + retry with
// adaptive sub-stepping, scalar-exact degradation, freeze-and-flag, and
// the RunReport accounting that ties them together.
//
//===----------------------------------------------------------------------===//

#include "easyml/Sema.h"
#include "models/Registry.h"
#include "sim/Simulator.h"

#include <cmath>
#include <gtest/gtest.h>
#include <limits>

using namespace limpet;
using namespace limpet::exec;
using namespace limpet::sim;

namespace {

double quietNaN() { return std::numeric_limits<double>::quiet_NaN(); }

std::optional<CompiledModel> compileByName(const char *Name,
                                           EngineConfig Cfg) {
  const models::ModelEntry *M = models::findModel(Name);
  EXPECT_NE(M, nullptr);
  DiagnosticEngine Diags;
  auto Info = easyml::compileModelInfo(M->Name, M->Source, Diags);
  EXPECT_TRUE(Info.has_value()) << Diags.str();
  return CompiledModel::compile(*Info, Cfg);
}

SimOptions guardedOpts(int64_t Cells = 16, int64_t Steps = 120) {
  SimOptions Opts;
  Opts.NumCells = Cells;
  Opts.NumSteps = Steps;
  Opts.StimPeriod = 20.0;
  Opts.Guard.Enabled = true;
  return Opts;
}

//===----------------------------------------------------------------------===//
// Health scan
//===----------------------------------------------------------------------===//

TEST(HealthScan, BulkChecksCatchNanInfAndRange) {
  double Good[] = {0.0, -3.5, 1e11};
  EXPECT_TRUE(allWithinMagnitude(Good, 3, 1e12));
  double Nan[] = {0.0, quietNaN(), 1.0};
  EXPECT_FALSE(allWithinMagnitude(Nan, 3, 1e12));
  double Inf[] = {std::numeric_limits<double>::infinity()};
  EXPECT_FALSE(allWithinMagnitude(Inf, 1, 1e12));
  double Big[] = {-2e12};
  EXPECT_FALSE(allWithinMagnitude(Big, 1, 1e12));
  EXPECT_TRUE(allWithinMagnitude(nullptr, 0, 1e12));

  double Vm[] = {-80.0, 40.0};
  EXPECT_TRUE(allWithinRange(Vm, 2, -250.0, 250.0));
  Vm[1] = 260.0;
  EXPECT_FALSE(allWithinRange(Vm, 2, -250.0, 250.0));
  Vm[1] = quietNaN();
  EXPECT_FALSE(allWithinRange(Vm, 2, -250.0, 250.0));
}

TEST(HealthScan, SimulatorScanFlagsInjectedFaults) {
  auto M = compileByName("HodgkinHuxley", EngineConfig::baseline());
  Simulator S(*M, guardedOpts(/*Cells=*/8, /*Steps=*/0));
  EXPECT_TRUE(S.scanIsHealthy());
  EXPECT_TRUE(S.faultyCells().empty());
  S.pokeState(2, 0, quietNaN());
  S.pokeState(6, 1, quietNaN());
  EXPECT_FALSE(S.scanIsHealthy());
  EXPECT_EQ(S.faultyCells(), (std::vector<int64_t>{2, 6}));
}

TEST(RunReportStruct, MergeAndRender) {
  RunReport A, B;
  A.FaultEvents = 2;
  A.Retries = 3;
  B.FaultEvents = 1;
  B.CellsFrozen = 4;
  A.merge(B);
  EXPECT_EQ(A.FaultEvents, 3);
  EXPECT_EQ(A.Retries, 3);
  EXPECT_EQ(A.CellsFrozen, 4);
  EXPECT_FALSE(A.clean());
  EXPECT_NE(A.str().find("faults=3"), std::string::npos);
  EXPECT_TRUE(RunReport().clean());
}

//===----------------------------------------------------------------------===//
// Recovery ladder
//===----------------------------------------------------------------------===//

TEST(FaultTolerance, CleanGuardedRunMatchesUnguardedBitForBit) {
  auto M = compileByName("HodgkinHuxley", EngineConfig::limpetMLIR(4));
  SimOptions Guarded = guardedOpts();
  SimOptions Plain = Guarded;
  Plain.Guard.Enabled = false;
  Simulator A(*M, Guarded), B(*M, Plain);
  A.run();
  B.run();
  EXPECT_TRUE(A.report().clean());
  EXPECT_GT(A.report().HealthScans, 0);
  EXPECT_DOUBLE_EQ(A.stateChecksum(), B.stateChecksum());
}

TEST(FaultTolerance, SingleInjectedNanHealedBySubstepping) {
  auto M = compileByName("HodgkinHuxley", EngineConfig::limpetMLIR(4));
  Simulator S(*M, guardedOpts());
  bool Fired = false;
  S.setFaultInjector([&](Simulator &Sim) {
    if (!Fired && Sim.stepsDone() == 40) {
      Fired = true;
      Sim.pokeState(3, 0, quietNaN());
    }
  });
  S.run();
  const RunReport &R = S.report();
  EXPECT_TRUE(Fired);
  EXPECT_TRUE(S.scanIsHealthy());
  EXPECT_EQ(R.FaultEvents, 1);
  EXPECT_EQ(R.FaultyCells, 1);
  EXPECT_GE(R.Retries, 1);
  EXPECT_GT(R.Substeps, 0);
  EXPECT_EQ(R.CellsDegraded, 0);
  EXPECT_EQ(R.CellsFrozen, 0);
  EXPECT_EQ(S.cellMode(3), CellMode::Normal);
  EXPECT_EQ(S.stepsDone(), S.options().NumSteps);
}

TEST(FaultTolerance, UnhealableCellFreezesWithoutCorruptingNeighbors) {
  auto M = compileByName("HodgkinHuxley", EngineConfig::limpetMLIR(4));
  const int64_t Victim = 5;
  Simulator S(*M, guardedOpts());
  S.setFaultInjector(
      [&](Simulator &Sim) { Sim.pokeState(Victim, 1, quietNaN()); });
  S.run();

  Simulator Clean(*M, guardedOpts());
  Clean.run();

  EXPECT_TRUE(S.scanIsHealthy());
  EXPECT_EQ(S.cellMode(Victim), CellMode::Frozen);
  EXPECT_EQ(S.report().CellsFrozen, 1);
  // The final (successful) re-run of every recovered window happens at
  // nominal dt, so untouched cells must be bit-identical to an
  // undisturbed guarded run.
  for (int64_t C = 0; C != S.options().NumCells; ++C) {
    if (C == Victim)
      continue;
    EXPECT_DOUBLE_EQ(S.vm(C), Clean.vm(C)) << C;
    EXPECT_DOUBLE_EQ(S.stateOf(C, 0), Clean.stateOf(C, 0)) << C;
  }
}

TEST(FaultTolerance, CorruptedLutDegradesPopulationToScalarExact) {
  auto M = compileByName("HodgkinHuxley", EngineConfig::limpetMLIR(4));
  SimOptions Opts = guardedOpts(/*Cells=*/8, /*Steps=*/48);
  Simulator S(*M, Opts);
  runtime::LutTableSet &Luts = S.mutableLuts();
  ASSERT_FALSE(Luts.empty());
  for (runtime::LutTable &T : Luts.Tables)
    for (int Row = 0; Row != T.rows(); ++Row)
      for (int Col = 0; Col != T.cols(); ++Col)
        T.at(Row, Col) = quietNaN();
  S.run();
  const RunReport &R = S.report();
  EXPECT_TRUE(S.scanIsHealthy());
  // Re-integration reads the same poisoned rows, so the dt ladder must
  // be skipped and the whole population lands on the scalar-exact path.
  EXPECT_EQ(R.Retries, 0);
  EXPECT_EQ(R.CellsDegraded, Opts.NumCells);
  EXPECT_EQ(R.CellsFrozen, 0);
  for (int64_t C = 0; C != Opts.NumCells; ++C) {
    EXPECT_EQ(S.cellMode(C), CellMode::ScalarExact) << C;
    EXPECT_TRUE(std::isfinite(S.vm(C))) << C;
  }
  // Degraded cells keep evolving: the exact kernel still produces the
  // resting-state dynamics.
  EXPECT_NEAR(S.vm(0), -65.0, 10.0);
}

TEST(FaultTolerance, ReportTotalsMatchMultipleInjections) {
  auto M = compileByName("HodgkinHuxley", EngineConfig::limpetMLIR(4));
  // Three one-shot NaNs into distinct cells in distinct scan windows
  // (interval 8): each is one fault event, one faulty cell, healed by
  // one retry.
  const int64_t Steps[] = {13, 45, 90};
  const int64_t Cells[] = {1, 9, 14};
  Simulator S(*M, guardedOpts());
  bool Fired[3] = {false, false, false};
  S.setFaultInjector([&](Simulator &Sim) {
    for (int I = 0; I != 3; ++I)
      if (!Fired[I] && Sim.stepsDone() == Steps[I]) {
        Fired[I] = true;
        Sim.pokeState(Cells[I], 0, quietNaN());
      }
  });
  S.run();
  const RunReport &R = S.report();
  EXPECT_TRUE(Fired[0] && Fired[1] && Fired[2]);
  EXPECT_TRUE(S.scanIsHealthy());
  EXPECT_EQ(R.FaultEvents, 3);
  EXPECT_EQ(R.FaultyCells, 3);
  EXPECT_GE(R.Retries, 3);
  EXPECT_EQ(R.CellsDegraded, 0);
  EXPECT_EQ(R.CellsFrozen, 0);
}

TEST(FaultTolerance, ExtremeDtKeptFinite) {
  auto M = compileByName("HodgkinHuxley", EngineConfig::baseline());
  SimOptions Opts = guardedOpts(/*Cells=*/4, /*Steps=*/32);
  Opts.Dt = 1.0; // ~100x past the forward-Euler stability limit
  Simulator S(*M, Opts);
  S.run();
  EXPECT_TRUE(S.scanIsHealthy());
  EXPECT_GT(S.report().FaultEvents, 0);
  EXPECT_EQ(S.stepsDone(), Opts.NumSteps);
  for (int64_t C = 0; C != Opts.NumCells; ++C)
    EXPECT_TRUE(std::isfinite(S.vm(C))) << C;
}

TEST(FaultTolerance, FreezeDisabledStillCleansPopulation) {
  auto M = compileByName("HodgkinHuxley", EngineConfig::limpetMLIR(4));
  SimOptions Opts = guardedOpts(/*Cells=*/8, /*Steps=*/48);
  Opts.Guard.AllowScalarFallback = false;
  Opts.Guard.AllowFreeze = false;
  Simulator S(*M, Opts);
  S.setFaultInjector([&](Simulator &Sim) { Sim.pokeState(2, 0, quietNaN()); });
  S.run();
  // With every ladder rung disabled the last resort pins faulty cells in
  // place; the run must still complete with a clean population.
  EXPECT_TRUE(S.scanIsHealthy());
  EXPECT_EQ(S.stepsDone(), Opts.NumSteps);
  EXPECT_GT(S.report().FaultEvents, 0);
}

TEST(FaultTolerance, ManualSteppingIsUnguarded) {
  auto M = compileByName("HodgkinHuxley", EngineConfig::baseline());
  Simulator S(*M, guardedOpts(/*Cells=*/4, /*Steps=*/8));
  S.pokeState(1, 0, quietNaN());
  S.step(); // manual stepping never scans or rolls back
  EXPECT_FALSE(S.scanIsHealthy());
  EXPECT_EQ(S.report().HealthScans, 0);
}

} // namespace
