//===- PipelinePropertyTests.cpp - randomized differential testing --------------===//
//
// Property tests over the whole compilation pipeline: randomly generated
// EasyML expressions are compiled (frontend -> preprocessor -> IR ->
// passes -> bytecode) and executed by both engines, and the result is
// compared against direct AST evaluation. Any miscompilation in any stage
// shows up as a differential.
//
//===----------------------------------------------------------------------===//

#include "easyml/ConstEval.h"
#include "easyml/Sema.h"
#include "exec/CompiledModel.h"

#include <cmath>
#include <gtest/gtest.h>
#include <random>

using namespace limpet;
using namespace limpet::exec;

namespace {

/// Generates random EasyML expressions over the variable Vm that stay
/// finite for Vm in [-90, 50]: division guards, exp arguments scaled,
/// log/sqrt over strictly positive quantities.
class ExprGen {
public:
  explicit ExprGen(uint64_t Seed) : Rng(Seed) {}

  std::string gen(int Depth) {
    if (Depth <= 0)
      return leaf();
    switch (pick(9)) {
    case 0:
    case 1:
      return "(" + gen(Depth - 1) + " + " + gen(Depth - 1) + ")";
    case 2:
      return "(" + gen(Depth - 1) + " - " + gen(Depth - 1) + ")";
    case 3:
      return "(" + gen(Depth - 1) + " * " + gen(Depth - 1) + ")";
    case 4:
      // Guarded division: denominator bounded away from zero.
      return "(" + gen(Depth - 1) + " / (2.0 + fabs(" + gen(Depth - 1) +
             ")))";
    case 5:
      return "exp((" + gen(Depth - 1) + ")/60.0)";
    case 6:
      return "log(1.0 + fabs(" + gen(Depth - 1) + "))";
    case 7:
      return "((" + gen(Depth - 1) + " < " + gen(Depth - 1) + ") ? " +
             gen(Depth - 1) + " : " + gen(Depth - 1) + ")";
    default:
      return "tanh((" + gen(Depth - 1) + ")/40.0)";
    }
  }

private:
  std::mt19937_64 Rng;

  int pick(int N) { return int(Rng() % uint64_t(N)); }

  std::string leaf() {
    switch (pick(3)) {
    case 0:
      return "Vm";
    case 1: {
      double V = std::uniform_real_distribution<double>(-10, 10)(Rng);
      char Buf[32];
      std::snprintf(Buf, sizeof(Buf), "%.4f", V);
      return std::string(Buf);
    }
    default:
      return "kparam";
    }
  }
};

/// Evaluates an expression-model's Iion through a compiled kernel for one
/// cell at the given Vm.
double evalThroughKernel(const CompiledModel &M, double Vm) {
  std::vector<double> State(M.stateArraySize(1));
  M.initializeState(State.data(), 1);
  std::vector<double> Ext = {Vm, 0.0};
  std::vector<double> Params = M.defaultParams();
  KernelArgs Args;
  Args.State = State.data();
  Args.Exts = {&Ext[0], &Ext[1]};
  Args.Params = Params.data();
  Args.Start = 0;
  Args.End = 1;
  Args.NumCells = 1;
  Args.Dt = 0.01;
  M.computeStep(Args);
  return Ext[1]; // Iion
}

class RandomExprPipeline : public ::testing::TestWithParam<int> {};

TEST_P(RandomExprPipeline, KernelMatchesAstEvaluation) {
  ExprGen Gen(uint64_t(GetParam()) * 7919 + 13);
  std::string Expr = Gen.gen(4);
  std::string Src = "Vm; .external();\nIion; .external();\n"
                    "group{ kparam = 1.75; }.param();\n"
                    "diff_w = -w;\nw_init = 1.0;\n"
                    "Iion = " +
                    Expr + ";\n";

  DiagnosticEngine Diags;
  auto Info = easyml::compileModelInfo("rand", Src, Diags);
  ASSERT_TRUE(Info.has_value()) << Diags.str() << "\nexpr: " << Expr;

  auto Scalar = CompiledModel::compile(*Info, EngineConfig::baseline());
  auto Vector = CompiledModel::compile(*Info, EngineConfig::limpetMLIR(8));
  ASSERT_TRUE(Scalar && Vector);

  // AST-level reference evaluation of the same expression.
  int IionIdx = Info->externalIndex("Iion");
  const easyml::ExprPtr &Ref = Info->Externals[size_t(IionIdx)].Value;

  for (double Vm = -90.0; Vm <= 50.0; Vm += 13.7) {
    auto Expected = easyml::evalExpr(
        *Ref, [&](std::string_view Name) -> std::optional<double> {
          if (Name == "Vm")
            return Vm;
          if (Name == "kparam")
            return 1.75;
          if (Name == "w")
            return 1.0;
          return std::nullopt;
        });
    ASSERT_TRUE(Expected.has_value()) << Expr;
    if (!std::isfinite(*Expected))
      continue; // overflowed expression; inf/nan compare is meaningless
    double GotScalar = evalThroughKernel(*Scalar, Vm);
    double GotVector = evalThroughKernel(*Vector, Vm);
    double Tol = 1e-9 * std::max(1.0, std::fabs(*Expected));
    EXPECT_NEAR(GotScalar, *Expected, Tol)
        << "scalar, Vm=" << Vm << "\nexpr: " << Expr;
    EXPECT_NEAR(GotVector, *Expected, Tol)
        << "vector, Vm=" << Vm << "\nexpr: " << Expr;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomExprPipeline,
                         ::testing::Range(0, 40));

} // namespace
