//===- TelemetryTests.cpp - observability layer unit tests ----------------===//
//
// Covers the counter registry, scoped timers, the thread-local runtime
// shards (merged across a real ThreadPool fan-out), Chrome trace-event
// JSON well-formedness, the bench NDJSON sink, and the zero-overhead
// guarantee of telemetry-off builds (TelemetryOffCheck.cpp, a TU compiled
// with LIMPET_TELEMETRY_ENABLED=0 and linked into this binary).
//
//===----------------------------------------------------------------------===//

#include "bench/BenchHarness.h"
#include "easyml/Sema.h"
#include "models/Registry.h"
#include "runtime/ThreadPool.h"
#include "sim/Simulator.h"
#include "support/Telemetry.h"
#include "support/Trace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

using namespace limpet;

/// Defined in TelemetryOffCheck.cpp (built with telemetry disabled).
/// Returns a bitmask of passed checks; kOffCheckAll means all passed.
int telemetryOffCheck();
extern const int kOffCheckAll;

namespace {

//===----------------------------------------------------------------------===//
// A minimal JSON well-formedness checker (no external dependencies).
//===----------------------------------------------------------------------===//

class JsonChecker {
public:
  explicit JsonChecker(std::string_view S) : P(S.data()), E(S.data() + S.size()) {}

  bool valid() {
    skipWs();
    if (!value())
      return false;
    skipWs();
    return P == E;
  }

private:
  const char *P, *E;

  void skipWs() {
    while (P != E && (*P == ' ' || *P == '\t' || *P == '\n' || *P == '\r'))
      ++P;
  }
  bool lit(const char *S) {
    size_t N = std::strlen(S);
    if (size_t(E - P) < N || std::strncmp(P, S, N) != 0)
      return false;
    P += N;
    return true;
  }
  bool string() {
    if (P == E || *P != '"')
      return false;
    ++P;
    while (P != E && *P != '"') {
      if (*P == '\\') {
        ++P;
        if (P == E)
          return false;
      }
      ++P;
    }
    if (P == E)
      return false;
    ++P; // closing quote
    return true;
  }
  bool number() {
    const char *Start = P;
    if (P != E && (*P == '-' || *P == '+'))
      ++P;
    while (P != E && (std::isdigit((unsigned char)*P) || *P == '.' ||
                      *P == 'e' || *P == 'E' || *P == '-' || *P == '+'))
      ++P;
    return P != Start;
  }
  bool value() {
    skipWs();
    if (P == E)
      return false;
    if (*P == '{')
      return object();
    if (*P == '[')
      return array();
    if (*P == '"')
      return string();
    if (lit("true") || lit("false") || lit("null"))
      return true;
    return number();
  }
  bool object() {
    ++P; // '{'
    skipWs();
    if (P != E && *P == '}') {
      ++P;
      return true;
    }
    while (true) {
      skipWs();
      if (!string())
        return false;
      skipWs();
      if (P == E || *P != ':')
        return false;
      ++P;
      if (!value())
        return false;
      skipWs();
      if (P != E && *P == ',') {
        ++P;
        continue;
      }
      break;
    }
    if (P == E || *P != '}')
      return false;
    ++P;
    return true;
  }
  bool array() {
    ++P; // '['
    skipWs();
    if (P != E && *P == ']') {
      ++P;
      return true;
    }
    while (true) {
      if (!value())
        return false;
      skipWs();
      if (P != E && *P == ',') {
        ++P;
        continue;
      }
      break;
    }
    if (P == E || *P != ']')
      return false;
    ++P;
    return true;
  }
};

bool isValidJson(std::string_view S) { return JsonChecker(S).valid(); }

TEST(JsonChecker, SelfTest) {
  EXPECT_TRUE(isValidJson("{}"));
  EXPECT_TRUE(isValidJson(R"({"a":[1,2.5,-3e4],"b":"x\"y","c":null})"));
  EXPECT_FALSE(isValidJson("{"));
  EXPECT_FALSE(isValidJson(R"({"a":})"));
  EXPECT_FALSE(isValidJson(R"({"a":1} extra)"));
}

//===----------------------------------------------------------------------===//
// Counter registry
//===----------------------------------------------------------------------===//

TEST(Telemetry, CounterBasics) {
  telemetry::Counter &C = telemetry::counter("test.basics.a");
  C.reset();
  EXPECT_EQ(C.get(), 0u);
  C.add();
  C.add(41);
  EXPECT_EQ(C.get(), 42u);
  // Repeated lookup yields the same counter object.
  EXPECT_EQ(&telemetry::counter("test.basics.a"), &C);
  EXPECT_EQ(telemetry::Registry::instance().value("test.basics.a"), 42u);
  EXPECT_EQ(telemetry::Registry::instance().value("test.basics.missing"), 0u);
  C.reset();
}

TEST(Telemetry, SnapshotSortedAndSummaryRenders) {
  telemetry::counter("test.summary.z").add(1);
  telemetry::counter("test.summary.a.ns").add(2'500'000);
  auto Snap = telemetry::Registry::instance().snapshot();
  EXPECT_TRUE(std::is_sorted(
      Snap.begin(), Snap.end(),
      [](const auto &L, const auto &R) { return L.first < R.first; }));

  std::string Summary = telemetry::Registry::instance().summary();
  EXPECT_NE(Summary.find("summary"), std::string::npos);
  EXPECT_NE(Summary.find("z"), std::string::npos);
  // ".ns" counters also render as milliseconds.
  EXPECT_NE(Summary.find("ms"), std::string::npos);
  telemetry::counter("test.summary.z").reset();
  telemetry::counter("test.summary.a.ns").reset();
}

TEST(Telemetry, ScopedTimerAccumulates) {
  telemetry::Counter &C = telemetry::counter("test.timer.ns");
  C.reset();
  {
    telemetry::ScopedTimerNs T(C);
    // Do a little real work so even a coarse clock ticks.
    volatile double X = 1.0;
    for (int I = 0; I != 10000; ++I)
      X = X * 1.0000001;
  }
  EXPECT_GT(C.get(), 0u);
  C.reset();
}

//===----------------------------------------------------------------------===//
// Runtime shards
//===----------------------------------------------------------------------===//

TEST(Telemetry, RecordKernelChunkDerivedCounts) {
  telemetry::resetRuntimeCounters();
  telemetry::recordKernelChunk(/*Ns=*/1000, /*Cells=*/10, /*Width=*/4,
                               /*FastMath=*/true, /*LutOpsPerCell=*/3,
                               /*MathOpsPerCell=*/2);
  telemetry::recordKernelChunk(/*Ns=*/500, /*Cells=*/5, /*Width=*/1,
                               /*FastMath=*/false, /*LutOpsPerCell=*/0,
                               /*MathOpsPerCell=*/7);
  telemetry::RuntimeCounters R = telemetry::runtimeCounters();
  EXPECT_EQ(R.KernelCalls, 2u);
  EXPECT_EQ(R.KernelNs, 1500u);
  EXPECT_EQ(R.CellSteps, 15u);
  EXPECT_EQ(R.CellStepsByWidth[telemetry::RuntimeCounters::widthSlot(4)],
            10u);
  EXPECT_EQ(R.CellStepsByWidth[telemetry::RuntimeCounters::widthSlot(1)],
            5u);
  EXPECT_EQ(R.LutInterps, 30u);      // 3 ops x 10 cells
  EXPECT_EQ(R.FastMathCalls, 20u);   // 2 ops x 10 cells
  EXPECT_EQ(R.LibmCalls, 35u);       // 7 ops x 5 cells
  EXPECT_DOUBLE_EQ(R.nsPerCellStep(), 100.0);
  EXPECT_NE(R.str().find("cell-steps"), std::string::npos);
  telemetry::resetRuntimeCounters();
}

TEST(Telemetry, ShardsMergeAcrossThreadPool) {
  telemetry::resetRuntimeCounters();
  runtime::ThreadPool &Pool = runtime::globalThreadPool();
  constexpr int64_t N = 1000;
  Pool.parallelFor(0, N, /*NumThreads=*/4, [](int64_t Begin, int64_t End) {
    // One chunk record per range element, from whichever worker runs it.
    for (int64_t I = Begin; I != End; ++I)
      telemetry::recordKernelChunk(/*Ns=*/1, /*Cells=*/2, /*Width=*/8,
                                   /*FastMath=*/true, /*LutOpsPerCell=*/1,
                                   /*MathOpsPerCell=*/0);
  });
  // parallelFor has a full barrier, so merging here is race-free.
  telemetry::RuntimeCounters R = telemetry::runtimeCounters();
  EXPECT_EQ(R.KernelCalls, uint64_t(N));
  EXPECT_EQ(R.KernelNs, uint64_t(N));
  EXPECT_EQ(R.CellSteps, uint64_t(2 * N));
  EXPECT_EQ(R.CellStepsByWidth[telemetry::RuntimeCounters::widthSlot(8)],
            uint64_t(2 * N));
  EXPECT_EQ(R.LutInterps, uint64_t(2 * N));
  telemetry::resetRuntimeCounters();
}

TEST(Telemetry, WidthSlotMapping) {
  using RC = telemetry::RuntimeCounters;
  EXPECT_EQ(RC::widthSlot(1), 0u);
  EXPECT_EQ(RC::widthSlot(2), 1u);
  EXPECT_EQ(RC::widthSlot(4), 2u);
  EXPECT_EQ(RC::widthSlot(8), 3u);
  EXPECT_EQ(RC::widthSlot(16), 0u); // unsupported widths collapse to 0
}

//===----------------------------------------------------------------------===//
// Trace recording
//===----------------------------------------------------------------------===//

TEST(Trace, SpansAreNoOpsWithoutRecorder) {
  ASSERT_EQ(telemetry::TraceRecorder::active(), nullptr);
  telemetry::TraceSpan S("orphan", "test"); // must not crash or record
}

TEST(Trace, RecorderProducesWellFormedJson) {
  telemetry::TraceRecorder R;
  telemetry::TraceRecorder::setActive(&R);
  {
    telemetry::TraceSpan Outer("outer", "test");
    telemetry::TraceSpan Inner("inner \"quoted\"\n", "test");
  }
  R.instant("marker", "test");
  R.counterSample("cells", 4096.0);
  telemetry::TraceRecorder::setActive(nullptr);

  // 2 spans + instant + counter + process_name metadata.
  EXPECT_EQ(R.eventCount(), 4u);
  EXPECT_EQ(R.droppedCount(), 0u);
  std::string Json = R.json();
  EXPECT_TRUE(isValidJson(Json)) << Json;
  EXPECT_NE(Json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(Json.find("\"outer\""), std::string::npos);
  EXPECT_NE(Json.find("\\\"quoted\\\""), std::string::npos);
  EXPECT_NE(Json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(Json.find("\"ph\":\"C\""), std::string::npos);
}

TEST(Trace, WriteFileRoundTrips) {
  telemetry::TraceRecorder R;
  telemetry::TraceRecorder::setActive(&R);
  { telemetry::TraceSpan S("span", "test"); }
  telemetry::TraceRecorder::setActive(nullptr);

  std::string Path = testing::TempDir() + "limpet_trace_test.json";
  std::string Error;
  ASSERT_TRUE(R.writeFile(Path, &Error)) << Error;
  std::ifstream In(Path);
  std::stringstream Ss;
  Ss << In.rdbuf();
  EXPECT_TRUE(isValidJson(Ss.str()));
  std::remove(Path.c_str());

  EXPECT_FALSE(R.writeFile("/nonexistent-dir/x/y.json", &Error));
  EXPECT_FALSE(Error.empty());
}

//===----------------------------------------------------------------------===//
// Bench NDJSON sink
//===----------------------------------------------------------------------===//

TEST(BenchStats, JsonRecordIsValid) {
  bench::BenchStat S;
  S.Bench = "unit \"test\"";
  S.Model = "HodgkinHuxley";
  S.Config = "vec8/aosoa/fastmath/lut";
  S.Threads = 2;
  S.Cells = 4096;
  S.Steps = 100;
  S.Repeats = 3;
  S.Seconds = 0.125;
  S.NsPerCellStep = 12.5;
  S.CellStepsPerSec = 8e7;
  S.LutInterps = 123;
  S.LibmCalls = 456;
  S.CheckpointCount = 7;
  S.CheckpointBytes = 8192;
  S.CheckpointNs = 90000;
  std::string Json = S.json();
  EXPECT_TRUE(isValidJson(Json)) << Json;
  EXPECT_NE(Json.find("\"model\":\"HodgkinHuxley\""), std::string::npos);
  EXPECT_NE(Json.find("\\\"test\\\""), std::string::npos);
  EXPECT_NE(Json.find("\"checkpoint_count\":7"), std::string::npos);
  EXPECT_NE(Json.find("\"checkpoint_bytes\":8192"), std::string::npos);
  EXPECT_NE(Json.find("\"checkpoint_ns\":90000"), std::string::npos);
}

TEST(BenchStats, EnvSinkAppendsNdjsonLines) {
  std::string Path = testing::TempDir() + "limpet_bench_stats_test.ndjson";
  std::remove(Path.c_str());

  bench::BenchStat S;
  S.Bench = "sink-test";
  S.Model = "M";
  S.Config = "scalar/aos/libm/lut";

  // Unset: the sink reports false and writes nothing.
  unsetenv("LIMPET_BENCH_STATS");
  EXPECT_FALSE(bench::recordBenchStat(S));

  setenv("LIMPET_BENCH_STATS", Path.c_str(), 1);
  EXPECT_TRUE(bench::recordBenchStat(S));
  S.Model = "N";
  EXPECT_TRUE(bench::recordBenchStat(S));
  unsetenv("LIMPET_BENCH_STATS");

  std::ifstream In(Path);
  ASSERT_TRUE(In.good());
  std::string Line;
  int Lines = 0;
  while (std::getline(In, Line)) {
    EXPECT_TRUE(isValidJson(Line)) << Line;
    ++Lines;
  }
  EXPECT_EQ(Lines, 2);
  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// End-to-end: a real compile+run populates the registry and shards
//===----------------------------------------------------------------------===//

std::optional<exec::CompiledModel> compileSuiteModel(const char *Name) {
  const models::ModelEntry *M = models::findModel(Name);
  if (!M)
    return std::nullopt;
  DiagnosticEngine Diags;
  auto Info = easyml::compileModelInfo(M->Name, M->Source, Diags);
  if (!Info)
    return std::nullopt;
  return exec::CompiledModel::compile(*Info, exec::EngineConfig::baseline());
}

TEST(Telemetry, CompileAndRunPopulateCounters) {
  telemetry::resetRuntimeCounters();
  auto Model = compileSuiteModel("MitchellSchaeffer");
  ASSERT_TRUE(Model.has_value());
  // The compile pipeline bumped its stage counters.
  auto &Reg = telemetry::Registry::instance();
  EXPECT_GT(Reg.value("compile.model.count"), 0u);
  EXPECT_GT(Reg.value("compile.codegen.ns"), 0u);
  EXPECT_GT(Reg.value("compile.bytecode.programs"), 0u);

  sim::SimOptions Opts;
  Opts.NumCells = 16;
  Opts.NumSteps = 8;
  sim::Simulator S(*Model, Opts);
  S.run();
  telemetry::RuntimeCounters R = telemetry::runtimeCounters();
  EXPECT_EQ(R.CellSteps, uint64_t(16 * 8));
  EXPECT_GT(R.KernelCalls, 0u);
  telemetry::resetRuntimeCounters();
}

TEST(Telemetry, SimOptionsStatsPrintsSummary) {
  auto Model = compileSuiteModel("MitchellSchaeffer");
  ASSERT_TRUE(Model.has_value());
  sim::SimOptions Opts;
  Opts.NumCells = 8;
  Opts.NumSteps = 4;
  Opts.Stats = true;
  sim::Simulator S(*Model, Opts);
  testing::internal::CaptureStdout();
  S.run();
  std::string Out = testing::internal::GetCapturedStdout();
  EXPECT_NE(Out.find("counter"), std::string::npos) << Out;
}

TEST(Telemetry, PassStatisticsTableRenders) {
  auto Model = compileSuiteModel("MitchellSchaeffer");
  ASSERT_TRUE(Model.has_value());
  const transforms::PassStatistics &PS = Model->kernel().PassStats;
  ASSERT_FALSE(PS.Entries.empty());
  std::string Table = PS.str();
  EXPECT_NE(Table.find("cse"), std::string::npos);
  EXPECT_NE(Table.find("ops before"), std::string::npos);
  for (const auto &E : PS.Entries) {
    EXPECT_FALSE(E.PassName.empty());
    EXPECT_GT(E.OpsBefore, 0);
    EXPECT_GT(E.OpsAfter, 0);
  }
}

//===----------------------------------------------------------------------===//
// Zero-overhead guarantee of telemetry-off builds
//===----------------------------------------------------------------------===//

TEST(TelemetryOff, DisabledTuCompilesToStubs) {
  EXPECT_EQ(telemetryOffCheck(), kOffCheckAll);
}

} // namespace
