//===- GoldenTests.cpp - physiological golden traces ----------------------------===//
//
// End-to-end integration tests: well-known physiological features of the
// classical models must emerge from the full pipeline (frontend ->
// preprocessor -> integrators -> LUT -> IR -> passes -> bytecode ->
// engine -> simulator).
//
//===----------------------------------------------------------------------===//

#include "easyml/Sema.h"
#include "models/Registry.h"
#include "sim/Simulator.h"

#include <cmath>
#include <gtest/gtest.h>

using namespace limpet;
using namespace limpet::exec;
using namespace limpet::sim;

namespace {

std::vector<double> traceOf(const char *Name, EngineConfig Cfg,
                            SimOptions Opts) {
  const models::ModelEntry *M = models::findModel(Name);
  EXPECT_NE(M, nullptr) << Name;
  DiagnosticEngine Diags;
  auto Info = easyml::compileModelInfo(M->Name, M->Source, Diags);
  EXPECT_TRUE(Info.has_value()) << Diags.str();
  auto Model = CompiledModel::compile(*Info, Cfg);
  EXPECT_TRUE(Model.has_value());
  Opts.RecordTrace = true;
  Simulator S(*Model, Opts);
  S.run();
  return S.trace();
}

struct ApFeatures {
  double Rest;   ///< voltage before the stimulus
  double Peak;   ///< maximum voltage
  double Final;  ///< voltage at the end of the run
  int UpstrokeStep = -1; ///< first step above 0 mV
};

ApFeatures featuresOf(const std::vector<double> &Trace) {
  ApFeatures F;
  F.Rest = Trace.front();
  F.Peak = -1e30;
  for (size_t I = 0; I != Trace.size(); ++I) {
    if (Trace[I] > F.Peak)
      F.Peak = Trace[I];
    if (F.UpstrokeStep < 0 && Trace[I] > 0.0)
      F.UpstrokeStep = int(I);
  }
  F.Final = Trace.back();
  return F;
}

TEST(Golden, HodgkinHuxleyActionPotential) {
  SimOptions Opts;
  Opts.NumCells = 8;
  Opts.NumSteps = 2000; // 20 ms
  Opts.StimStart = 1.0;
  Opts.StimDuration = 1.0;
  Opts.StimStrength = 40.0;
  ApFeatures F =
      featuresOf(traceOf("HodgkinHuxley", EngineConfig::baseline(), Opts));
  EXPECT_NEAR(F.Rest, -65.0, 1.0);
  EXPECT_GT(F.Peak, 20.0); // squid AP overshoots well above 0
  EXPECT_LT(F.Peak, 60.0);
  EXPECT_GT(F.UpstrokeStep, 0);
  EXPECT_LT(F.UpstrokeStep, 600);
  EXPECT_NEAR(F.Final, -65.0, 12.0); // repolarized by 20 ms
}

TEST(Golden, HodgkinHuxleyVectorEngineSameAP) {
  SimOptions Opts;
  Opts.NumCells = 8;
  Opts.NumSteps = 2000;
  Opts.StimStrength = 40.0;
  auto A = traceOf("HodgkinHuxley", EngineConfig::baseline(), Opts);
  auto B = traceOf("HodgkinHuxley", EngineConfig::limpetMLIR(8), Opts);
  ASSERT_EQ(A.size(), B.size());
  for (size_t I = 0; I != A.size(); ++I)
    ASSERT_NEAR(A[I], B[I], 1e-6) << I;
}

TEST(Golden, BeelerReuterPlateauMorphology) {
  SimOptions Opts;
  Opts.NumCells = 4;
  Opts.NumSteps = 10000; // 100 ms
  Opts.StimStrength = 40.0;
  Opts.StimDuration = 2.0;
  auto Trace = traceOf("BeelerReuter", EngineConfig::baseline(), Opts);
  ApFeatures F = featuresOf(Trace);
  EXPECT_NEAR(F.Rest, -84.6, 1.0);
  EXPECT_GT(F.Peak, 10.0);
  // Ventricular AP: still depolarized (plateau) at 60 ms.
  EXPECT_GT(Trace[6000], -60.0);
}

TEST(Golden, LuoRudy91Upstroke) {
  SimOptions Opts;
  Opts.NumCells = 4;
  Opts.NumSteps = 5000; // 50 ms
  Opts.StimStrength = 60.0;
  Opts.StimDuration = 1.0;
  ApFeatures F =
      featuresOf(traceOf("LuoRudy91", EngineConfig::baseline(), Opts));
  EXPECT_NEAR(F.Rest, -84.4, 1.0);
  EXPECT_GT(F.Peak, 0.0);
}

TEST(Golden, MitchellSchaefferExcitableThreshold) {
  // Sub-threshold stimulus: no AP; supra-threshold: AP.
  SimOptions Weak;
  Weak.NumCells = 2;
  Weak.NumSteps = 3000;
  Weak.StimStrength = 2.0;
  Weak.StimDuration = 1.0;
  ApFeatures FWeak = featuresOf(
      traceOf("MitchellSchaeffer", EngineConfig::baseline(), Weak));
  EXPECT_LT(FWeak.Peak, -30.0);

  SimOptions Strong = Weak;
  Strong.StimStrength = 30.0;
  Strong.StimDuration = 2.0;
  ApFeatures FStrong = featuresOf(
      traceOf("MitchellSchaeffer", EngineConfig::baseline(), Strong));
  EXPECT_GT(FStrong.Peak, -15.0);
}

TEST(Golden, GatesStayInUnitInterval) {
  // Property: every Rush-Larsen gate stays within [0, 1] for the whole
  // simulation (RL guarantees this for exact gate dynamics).
  const models::ModelEntry *M = models::findModel("BeelerReuter");
  DiagnosticEngine Diags;
  auto Info = easyml::compileModelInfo(M->Name, M->Source, Diags);
  auto Model = CompiledModel::compile(*Info, EngineConfig::limpetMLIR(8));
  SimOptions Opts;
  Opts.NumCells = 16;
  Opts.NumSteps = 3000;
  Opts.StimStrength = 40.0;
  Simulator S(*Model, Opts);
  for (int Step = 0; Step != Opts.NumSteps; ++Step) {
    S.step();
    if (Step % 250 != 0)
      continue;
    // sv 0..5 are the six gates (m,h,j,d,f,x1).
    for (int64_t Sv = 0; Sv != 6; ++Sv) {
      double G = S.stateOf(0, Sv);
      ASSERT_GE(G, -1e-9) << "sv " << Sv << " step " << Step;
      ASSERT_LE(G, 1.0 + 1e-9) << "sv " << Sv << " step " << Step;
    }
  }
}

TEST(Golden, AllClassicModelsProduceFiniteDynamics) {
  for (const models::ModelEntry &M : models::modelRegistry()) {
    if (!M.IsClassic)
      continue;
    SimOptions Opts;
    Opts.NumCells = 4;
    Opts.NumSteps = 1500;
    Opts.StimStrength = 30.0;
    Opts.StimPeriod = 100.0;
    auto Trace = traceOf(M.Name.c_str(), EngineConfig::baseline(), Opts);
    for (double V : Trace)
      ASSERT_TRUE(std::isfinite(V)) << M.Name;
    // Membrane voltage stays in a physiological window.
    ApFeatures F = featuresOf(Trace);
    EXPECT_GT(F.Peak, -120.0) << M.Name;
    EXPECT_LT(F.Peak, 200.0) << M.Name;
  }
}

} // namespace
