//===- BytecodeTests.cpp - exec/Bytecode + compiler unit tests -----------------===//

#include "codegen/Vectorize.h"
#include "easyml/Sema.h"
#include "exec/BytecodeCompiler.h"

#include <gtest/gtest.h>
#include <map>
#include <set>

using namespace limpet;
using namespace limpet::codegen;
using namespace limpet::exec;

namespace {

constexpr const char MiniModel[] = R"(
Vm; .external(); .nodal();
Iion; .external();
group{ g = 0.5; E = -80.0; }.param();
Vm_init = -80.0;
diff_w = 0.1*(Vm - E) - 0.2*w + exp(Vm/30.0)*0.01;
w_init = 0.25;
Iion = g*(Vm - E) + w;
)";

GeneratedKernel makeKernel(StateLayout Layout = StateLayout::AoS,
                           unsigned W = 8) {
  DiagnosticEngine Diags;
  auto Info = easyml::compileModelInfo("mini", MiniModel, Diags);
  EXPECT_TRUE(Info.has_value()) << Diags.str();
  CodeGenOptions Options;
  Options.Layout = Layout;
  Options.AoSoABlockWidth = W;
  Options.EnableLuts = false;
  return generateKernel(*Info, Options);
}

TEST(BytecodeCompiler, CompilesScalarKernel) {
  GeneratedKernel K = makeKernel();
  BcProgram P = compileToBytecode(K, K.ScalarFunc);
  EXPECT_GT(P.NumRegs, 0u);
  EXPECT_FALSE(P.Body.empty());
  EXPECT_EQ(P.Layout, StateLayout::AoS);
  EXPECT_EQ(P.NumSv, 1u);
  EXPECT_TRUE(P.HasDt);
  // Parameter loads were hoisted into the prologue.
  unsigned PrologueParamLoads = 0;
  for (const BcInstr &I : P.Prologue)
    PrologueParamLoads += I.Op == BcOp::LoadParam;
  EXPECT_EQ(PrologueParamLoads, 2u);
}

TEST(BytecodeCompiler, BodyHasExpectedAccessMix) {
  GeneratedKernel K = makeKernel();
  BcProgram P = compileToBytecode(K, K.ScalarFunc);
  unsigned StateLoads = 0, ExtLoads = 0, StateStores = 0, ExtStores = 0,
           Exps = 0;
  for (const BcInstr &I : P.Body) {
    StateLoads += I.Op == BcOp::LoadState;
    ExtLoads += I.Op == BcOp::LoadExt;
    StateStores += I.Op == BcOp::StoreState;
    ExtStores += I.Op == BcOp::StoreExt;
    Exps += I.Op == BcOp::Exp;
  }
  EXPECT_EQ(StateLoads, 1u);
  EXPECT_EQ(ExtLoads, 1u);
  EXPECT_EQ(StateStores, 1u);
  EXPECT_EQ(ExtStores, 1u);
  EXPECT_EQ(Exps, 1u);
}

TEST(BytecodeCompiler, ScalarAndVectorFormsMatchStructurally) {
  GeneratedKernel K = makeKernel(StateLayout::AoSoA, 8);
  BcProgram PS = compileToBytecode(K, K.ScalarFunc);
  ir::Operation *Vec = vectorizeKernel(K, 8);
  BcProgram PV = compileToBytecode(K, Vec);
  // Same loads/stores/math; only Copy (broadcast) counts may differ.
  auto Histogram = [](const BcProgram &P) {
    std::map<BcOp, unsigned> H;
    for (const BcInstr &I : P.Body)
      if (I.Op != BcOp::Copy)
        ++H[I.Op];
    return H;
  };
  EXPECT_EQ(Histogram(PS), Histogram(PV));
}

TEST(BytecodeCompiler, RegisterReuseKeepsFileSmall) {
  GeneratedKernel K = makeKernel();
  BcProgram P = compileToBytecode(K, K.ScalarFunc);
  // Without reuse the register count would equal the value count (every
  // instruction defines one); with last-use reuse it must be well below.
  EXPECT_LT(P.NumRegs, P.Body.size() + P.Prologue.size());
}

TEST(BytecodeCompiler, DestinationNeverAliasesSources) {
  // The engines' __restrict lane loops rely on this guarantee.
  GeneratedKernel K = makeKernel(StateLayout::AoSoA, 8);
  ir::Operation *Vec = vectorizeKernel(K, 8);
  for (ir::Operation *Func : {K.ScalarFunc, Vec}) {
    BcProgram P = compileToBytecode(K, Func);
    for (const BcInstr &I : P.Body) {
      switch (I.Op) {
      case BcOp::StoreState:
      case BcOp::StoreExt:
      case BcOp::ConstF:
      case BcOp::LoadState:
      case BcOp::LoadExt:
      case BcOp::LoadParam:
        continue;
      case BcOp::LutCoord:
        EXPECT_NE(I.Dst, I.A);
        EXPECT_NE(I.C, I.A);
        EXPECT_NE(I.Dst, I.C);
        continue;
      case BcOp::Select:
        EXPECT_NE(I.Dst, I.C);
        [[fallthrough]];
      default:
        EXPECT_NE(I.Dst, I.A);
        if (I.Op != BcOp::Copy && I.Op != BcOp::Neg)
          EXPECT_NE(I.Dst, I.B);
      }
    }
  }
}

TEST(BytecodeCompiler, CountsFlopsAndTraffic) {
  GeneratedKernel K = makeKernel();
  BcProgram P = compileToBytecode(K, K.ScalarFunc);
  EXPECT_GT(P.Counts.FlopsPerCell, 0.0);
  // 2 loads (state + ext) and 2 stores of 8 bytes each.
  EXPECT_DOUBLE_EQ(P.Counts.LoadBytesPerCell, 16.0);
  EXPECT_DOUBLE_EQ(P.Counts.StoreBytesPerCell, 16.0);
  EXPECT_GT(P.Counts.operationalIntensity(), 0.0);
}

TEST(Bytecode, DisassemblyIsReadable) {
  GeneratedKernel K = makeKernel();
  BcProgram P = compileToBytecode(K, K.ScalarFunc);
  std::string Text = P.str();
  EXPECT_NE(Text.find("prologue:"), std::string::npos);
  EXPECT_NE(Text.find("body:"), std::string::npos);
  EXPECT_NE(Text.find("load.state"), std::string::npos);
  EXPECT_NE(Text.find("store.ext"), std::string::npos);
  EXPECT_NE(Text.find("exp"), std::string::npos);
}

TEST(Bytecode, OpNamesAreUnique) {
  std::set<std::string_view> Names;
  for (int I = 0; I <= int(BcOp::LutInterpCubic); ++I)
    Names.insert(bcOpName(BcOp(I)));
  EXPECT_EQ(Names.size(), size_t(BcOp::LutInterpCubic) + 1);
}

} // namespace
