//===- TelemetryOffCheck.cpp - telemetry-off zero-overhead checks ---------===//
//
// This TU is compiled with LIMPET_TELEMETRY_ENABLED=0 (see
// tests/CMakeLists.txt) and linked into telemetry_tests, which is
// otherwise built with the layer enabled. That proves two things at once:
//
//  1. The on/off APIs are ODR-safe to mix in one binary (they live in
//     differently named inline namespaces).
//  2. The disabled API really is free: the stub types are empty, the stub
//     calls observably do nothing, and no recorder can ever activate.
//
//===----------------------------------------------------------------------===//

#include "support/Telemetry.h"
#include "support/Trace.h"

#include <type_traits>

using namespace limpet;

static_assert(!telemetry::kEnabled,
              "TelemetryOffCheck.cpp must be compiled with "
              "LIMPET_TELEMETRY_ENABLED=0");
static_assert(std::is_empty_v<telemetry::ScopedTimerNs>,
              "disabled ScopedTimerNs must carry no state");
static_assert(std::is_empty_v<telemetry::TraceSpan>,
              "disabled TraceSpan must carry no state");

/// All bits telemetryOffCheck() can report.
extern const int kOffCheckAll = (1 << 6) - 1;

int telemetryOffCheck() {
  int Passed = 0;

  // Bit 0: the compile-time switch really is off in this TU.
  if (!telemetry::kEnabled)
    Passed |= 1 << 0;

  // Bit 1: counters ignore adds.
  telemetry::Counter &C = telemetry::counter("off.check");
  C.add(42);
  if (C.get() == 0)
    Passed |= 1 << 1;

  // Bit 2: the registry records nothing.
  telemetry::Registry &R = telemetry::Registry::instance();
  if (R.value("off.check") == 0 && R.snapshot().empty())
    Passed |= 1 << 2;

  // Bit 3: runtime-shard recording is a no-op.
  telemetry::recordKernelChunk(/*Ns=*/100, /*Cells=*/10, /*Width=*/8,
                               /*FastMath=*/true, /*LutOpsPerCell=*/1,
                               /*MathOpsPerCell=*/1);
  telemetry::RuntimeCounters RC = telemetry::runtimeCounters();
  if (RC.KernelNs == 0 && RC.CellSteps == 0 && RC.LutInterps == 0)
    Passed |= 1 << 3;

  // Bit 4: a recorder can never become active.
  telemetry::TraceRecorder Rec;
  telemetry::TraceRecorder::setActive(&Rec);
  if (telemetry::TraceRecorder::active() == nullptr) {
    { telemetry::TraceSpan Span("off", "off"); }
    if (Rec.eventCount() == 0)
      Passed |= 1 << 4;
  }
  telemetry::TraceRecorder::setActive(nullptr);

  // Bit 5: timers construct and destruct without side effects.
  {
    telemetry::ScopedTimerNs T("off.timer");
    (void)T;
  }
  if (R.value("off.timer") == 0)
    Passed |= 1 << 5;

  return Passed;
}
