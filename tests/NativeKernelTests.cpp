//===- NativeKernelTests.cpp - specialized/JIT kernel tier -----------------===//
//
// The native tier's contract (docs/COMPILER.md): for any (layout, width)
// point the emitted machine-code kernel is BIT-identical to the bytecode
// VM — not within tolerance, identical — the cache key separates emitter
// versions and toolchains, a corrupt cached .so heals by re-emission, and
// every failure mode degrades to the VM with a recoverable Status.
//
// Tests that need a real toolchain GTEST_SKIP when nativeToolchain()
// fails, so the suite stays green on compiler-less boxes (the tier itself
// is designed to degrade there too).
//
//===----------------------------------------------------------------------===//

#include "compiler/CompileCache.h"
#include "compiler/CompilerDriver.h"
#include "compiler/KernelEmitter.h"
#include "daemon/Protocol.h"
#include "easyml/Sema.h"
#include "exec/NativeKernel.h"
#include "models/Registry.h"
#include "sim/Simulator.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <gtest/gtest.h>

using namespace limpet;
using namespace limpet::exec;

namespace {

/// RAII scratch disk-cache dir: points the process-global cache at a
/// fresh directory and restores the override afterwards.
class ScratchCacheDir {
public:
  ScratchCacheDir() {
    char Tmpl[] = "/tmp/limpet-native-test.XXXXXX";
    Dir = mkdtemp(Tmpl);
    compiler::CompileCache::global().setDiskDir(Dir);
  }
  ~ScratchCacheDir() {
    compiler::CompileCache::global().setDiskDir("");
    std::string Cmd = "rm -rf " + Dir;
    (void)std::system(Cmd.c_str());
  }
  const std::string &path() const { return Dir; }

private:
  std::string Dir;
};

bool toolchainAvailable() {
  return bool(compiler::nativeToolchain());
}

compiler::CompileResult compileWithTier(const std::string &ModelName,
                                        const EngineConfig &Cfg,
                                        EngineTier Tier) {
  const models::ModelEntry *M = models::findModel(ModelName);
  EXPECT_NE(M, nullptr) << ModelName;
  compiler::DriverOptions Opts;
  Opts.Config = Cfg;
  Opts.Tier = Tier;
  Opts.UseCache = false; // bytecode cache off; native cache still keyed
  compiler::CompilerDriver Driver(Opts);
  return Driver.compileEntry(*M);
}

/// Steps both models over identical state/external/param buffers and
/// requires byte-identical state arrays afterwards.
void expectBitIdentical(const CompiledModel &VM, const CompiledModel &Native,
                        int64_t NumCells, int64_t Steps) {
  ASSERT_FALSE(VM.usingNativeTier());
  ASSERT_TRUE(Native.usingNativeTier());
  size_t N = VM.stateArraySize(NumCells);
  ASSERT_EQ(N, Native.stateArraySize(NumCells));
  std::vector<double> SA(N), SB(N);
  VM.initializeState(SA.data(), NumCells);
  Native.initializeState(SB.data(), NumCells);
  // Each external is a per-cell array: Exts[i] is indexed by cell.
  std::vector<double> Inits = VM.externalInits();
  std::vector<std::vector<double>> ExtA, ExtB;
  for (double Init : Inits) {
    ExtA.emplace_back(size_t(NumCells), Init);
    ExtB.emplace_back(size_t(NumCells), Init);
  }
  std::vector<double> Params = VM.defaultParams();

  for (int64_t Step = 0; Step != Steps; ++Step) {
    KernelArgs A;
    A.State = SA.data();
    for (std::vector<double> &E : ExtA)
      A.Exts.push_back(E.data());
    A.Params = Params.data();
    A.Start = 0;
    A.End = NumCells;
    A.NumCells = NumCells;
    A.Dt = 0.01;
    A.T = double(Step) * 0.01;
    KernelArgs B = A;
    B.State = SB.data();
    B.Exts.clear();
    for (std::vector<double> &E : ExtB)
      B.Exts.push_back(E.data());
    VM.computeStep(A);
    Native.computeStep(B);
  }
  ASSERT_EQ(std::memcmp(SA.data(), SB.data(), N * sizeof(double)), 0)
      << "native state diverged from the VM";
  ASSERT_EQ(ExtA, ExtB);
}

struct LayoutPoint {
  const char *Name;
  unsigned Width;
  codegen::StateLayout Layout;
  bool FastMath;
};

class NativeKernelEquivalence
    : public ::testing::TestWithParam<LayoutPoint> {};

TEST_P(NativeKernelEquivalence, BitIdenticalToVM) {
  if (!toolchainAvailable())
    GTEST_SKIP() << "no native toolchain on this box";
  ScratchCacheDir Scratch;
  compiler::clearNativeKernelRegistry();

  const LayoutPoint &P = GetParam();
  EngineConfig Cfg;
  Cfg.Width = P.Width;
  Cfg.Layout = P.Layout;
  Cfg.FastMath = P.FastMath;
  Cfg.EnableLuts = true;

  compiler::CompileResult VM =
      compileWithTier("Courtemanche", Cfg, EngineTier::VM);
  ASSERT_TRUE(VM) << VM.Err.message();
  compiler::CompileResult Native =
      compileWithTier("Courtemanche", Cfg, EngineTier::Native);
  ASSERT_TRUE(Native) << Native.Err.message();
  ASSERT_TRUE(Native.NativeAttached) << Native.NativeErr.message();

  // 37 cells: not a multiple of 2/4/8, so vector mains + scalar tails
  // both run and must agree with the VM's identical split.
  expectBitIdentical(*VM.Model, *Native.Model, 37, 25);
}

INSTANTIATE_TEST_SUITE_P(
    LayoutsAndWidths, NativeKernelEquivalence,
    ::testing::Values(
        LayoutPoint{"scalar_aos_libm", 1, codegen::StateLayout::AoS, false},
        LayoutPoint{"vec4_aosoa_fast", 4, codegen::StateLayout::AoSoA, true},
        LayoutPoint{"vec8_aosoa_fast", 8, codegen::StateLayout::AoSoA, true},
        LayoutPoint{"vec4_soa_fast", 4, codegen::StateLayout::SoA, true},
        LayoutPoint{"vec4_aos_libm", 4, codegen::StateLayout::AoS, false}),
    [](const ::testing::TestParamInfo<LayoutPoint> &I) {
      return I.param.Name;
    });

TEST(NativeKernelKey, SeparatesEmitterVersionAndToolchain) {
  compiler::NativeToolchain TC;
  TC.Compiler = "/usr/bin/c++";
  TC.Identity = "g++ (Distro) 12.0.0";
  TC.Flags = "-O3 -march=native";
  uint64_t Base = compiler::nativeKernelKey(0x1234, 1, TC);

  // Same inputs -> same key (the warm path depends on this).
  EXPECT_EQ(Base, compiler::nativeKernelKey(0x1234, 1, TC));
  // A new emitter version must invalidate every cached kernel.
  EXPECT_NE(Base, compiler::nativeKernelKey(0x1234, 2, TC));
  // A different compile (model/config/pipeline) keys separately.
  EXPECT_NE(Base, compiler::nativeKernelKey(0x1235, 1, TC));
  // A compiler upgrade (identity string) or flag change re-keys: kernels
  // follow the exact toolchain that built the host process.
  compiler::NativeToolchain TC2 = TC;
  TC2.Identity = "g++ (Distro) 13.0.0";
  EXPECT_NE(Base, compiler::nativeKernelKey(0x1234, 1, TC2));
  compiler::NativeToolchain TC3 = TC;
  TC3.Flags = "-O2";
  EXPECT_NE(Base, compiler::nativeKernelKey(0x1234, 1, TC3));
  compiler::NativeToolchain TC4 = TC;
  TC4.Compiler = "/usr/local/bin/c++";
  EXPECT_NE(Base, compiler::nativeKernelKey(0x1234, 1, TC4));
}

TEST(NativeKernelCache, MemoryAndDiskTiers) {
  if (!toolchainAvailable())
    GTEST_SKIP() << "no native toolchain on this box";
  ScratchCacheDir Scratch;
  compiler::clearNativeKernelRegistry();

  EngineConfig Cfg = EngineConfig::limpetMLIR(4);
  compiler::CompileResult Cold =
      compileWithTier("HodgkinHuxley", Cfg, EngineTier::Native);
  ASSERT_TRUE(Cold.NativeAttached) << Cold.NativeErr.message();
  EXPECT_FALSE(Cold.NativeCacheHit);
  EXPECT_NE(Cold.NativeKey, 0u);

  // Same process: served from the in-memory registry, no cc, same key.
  compiler::CompileResult Mem =
      compileWithTier("HodgkinHuxley", Cfg, EngineTier::Native);
  ASSERT_TRUE(Mem.NativeAttached);
  EXPECT_TRUE(Mem.NativeCacheHit);
  EXPECT_FALSE(Mem.NativeDiskHit);
  EXPECT_EQ(Mem.NativeKey, Cold.NativeKey);
  // Both results share one loaded kernel object.
  EXPECT_EQ(Cold.Model->nativeKernel(), Mem.Model->nativeKernel());

  // Registry cleared ("fresh process"): served from the on-disk .so.
  compiler::clearNativeKernelRegistry();
  compiler::CompileResult Disk =
      compileWithTier("HodgkinHuxley", Cfg, EngineTier::Native);
  ASSERT_TRUE(Disk.NativeAttached) << Disk.NativeErr.message();
  EXPECT_TRUE(Disk.NativeCacheHit);
  EXPECT_TRUE(Disk.NativeDiskHit);
  EXPECT_EQ(Disk.NativeKey, Cold.NativeKey);
}

TEST(NativeKernelCache, CorruptSoHealsByReemission) {
  if (!toolchainAvailable())
    GTEST_SKIP() << "no native toolchain on this box";
  ScratchCacheDir Scratch;
  compiler::clearNativeKernelRegistry();

  EngineConfig Cfg = EngineConfig::limpetMLIR(4);
  uint64_t Key = 0;
  {
    compiler::CompileResult Cold =
        compileWithTier("HodgkinHuxley", Cfg, EngineTier::Native);
    ASSERT_TRUE(Cold.NativeAttached) << Cold.NativeErr.message();
    Key = Cold.NativeKey;
  }
  // Drop every reference (result + registry) so the library is unmapped
  // before we corrupt its file: dlopen dedups by inode, and a truncated
  // still-mapped object would SIGBUS instead of failing cleanly. A real
  // corrupt cache is always read by a fresh process, which this models.
  compiler::clearNativeKernelRegistry();

  // Replace the cached object with garbage (fresh inode, like a torn
  // write from another process would leave behind).
  char Buf[32];
  std::snprintf(Buf, sizeof Buf, "%016llx", (unsigned long long)Key);
  std::string SoPath = Scratch.path() + "/" + Buf + ".native.so";
  std::string TmpPath = SoPath + ".tmp";
  {
    std::ofstream Out(TmpPath, std::ios::trunc);
    ASSERT_TRUE(Out.good()) << TmpPath;
    Out << "this is not an ELF object";
  }
  ASSERT_EQ(std::rename(TmpPath.c_str(), SoPath.c_str()), 0);

  // A "fresh process" must not crash on the corrupt file: it deletes it,
  // re-emits, and still attaches a working kernel. In sanitized builds
  // dlclose is skipped, so dlopen of the same path returns the original
  // (still valid) mapping and the corrupt file reads as a disk hit; the
  // attached kernel is correct either way, which is what matters.
  compiler::CompileResult Healed =
      compileWithTier("HodgkinHuxley", Cfg, EngineTier::Native);
  ASSERT_TRUE(Healed.NativeAttached) << Healed.NativeErr.message();
  if (NativeKernel::unloadsOnRelease())
    EXPECT_FALSE(Healed.NativeCacheHit); // the corrupt .so was not "a hit"
  expectBitIdentical(*compileWithTier("HodgkinHuxley", Cfg,
                                      EngineTier::VM)
                          .Model,
                     *Healed.Model, 13, 10);
}

TEST(NativeKernelFallback, MissingCompilerIsRecoverable) {
  ScratchCacheDir Scratch;
  compiler::clearNativeKernelRegistry();
  setenv("LIMPET_NATIVE_CC", "/nonexistent/limpet-cxx", 1);

  // Native tier: the failure is reported in NativeErr but the compile
  // SUCCEEDS and the model runs on the VM.
  EngineConfig Cfg = EngineConfig::baseline();
  compiler::CompileResult R =
      compileWithTier("HodgkinHuxley", Cfg, EngineTier::Native);
  unsetenv("LIMPET_NATIVE_CC");
  ASSERT_TRUE(R) << R.Err.message();
  EXPECT_FALSE(R.NativeAttached);
  EXPECT_FALSE(R.NativeErr.isOk());
  EXPECT_FALSE(R.Model->usingNativeTier());

  sim::SimOptions Opts;
  Opts.NumCells = 8;
  Opts.NumSteps = 20;
  sim::Simulator S(*R.Model, Opts);
  S.run();
  EXPECT_TRUE(std::isfinite(S.stateChecksum()));
}

TEST(NativeKernelFallback, AutoTierIsSilentlyVM) {
  ScratchCacheDir Scratch;
  compiler::clearNativeKernelRegistry();
  setenv("LIMPET_NATIVE_CC", "/nonexistent/limpet-cxx", 1);
  compiler::CompileResult R = compileWithTier(
      "HodgkinHuxley", EngineConfig::baseline(), EngineTier::Auto);
  unsetenv("LIMPET_NATIVE_CC");
  ASSERT_TRUE(R) << R.Err.message();
  EXPECT_FALSE(R.NativeAttached);
  EXPECT_FALSE(R.Model->usingNativeTier()); // runs, on the VM
}

TEST(NativeKernelLoad, GarbageSoIsARecoverableError) {
  char Tmpl[] = "/tmp/limpet-native-garbage.XXXXXX";
  std::string Dir = mkdtemp(Tmpl);
  std::string Path = Dir + "/garbage.so";
  {
    std::ofstream Out(Path);
    Out << "\x7f" << "not-really-elf";
  }
  Expected<std::shared_ptr<NativeKernel>> K =
      NativeKernel::load(Path, 1, false, "garbage");
  EXPECT_FALSE(K);
  EXPECT_FALSE(K.status().message().empty());
  std::string Cmd = "rm -rf " + Dir;
  (void)std::system(Cmd.c_str());
}

TEST(EngineTierNames, RoundTrip) {
  for (EngineTier T :
       {EngineTier::VM, EngineTier::Native, EngineTier::Auto}) {
    auto Back = engineTierFromName(engineTierName(T));
    ASSERT_TRUE(Back.has_value());
    EXPECT_EQ(*Back, T);
  }
  EXPECT_FALSE(engineTierFromName("turbo").has_value());
}

TEST(JobSpecEngine, ParsesAndRoundTrips) {
  // The daemon's wire field: "engine":"auto" survives a spec round trip,
  // and an unknown tier is a recoverable admission error.
  auto Parsed = daemon::parseJobSpec(
      *daemon::JsonValue::parse("{\"model\":\"HodgkinHuxley\","
                                "\"engine\":\"auto\"}"));
  ASSERT_TRUE(Parsed) << Parsed.status().message();
  EXPECT_EQ(Parsed->Tier, EngineTier::Auto);

  daemon::JsonValue J = daemon::jobSpecToJson(*Parsed);
  auto Again = daemon::parseJobSpec(J);
  ASSERT_TRUE(Again) << Again.status().message();
  EXPECT_EQ(Again->Tier, EngineTier::Auto);

  auto Bad = daemon::parseJobSpec(
      *daemon::JsonValue::parse("{\"model\":\"HodgkinHuxley\","
                                "\"engine\":\"warp\"}"));
  EXPECT_FALSE(Bad);

  // Default (field omitted) is the VM tier.
  auto Default = daemon::parseJobSpec(
      *daemon::JsonValue::parse("{\"model\":\"HodgkinHuxley\"}"));
  ASSERT_TRUE(Default);
  EXPECT_EQ(Default->Tier, EngineTier::VM);
}

} // namespace
