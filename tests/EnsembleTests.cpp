//===- EnsembleTests.cpp - Batched parameter-sweep engine tests -----------===//
//
// The ensemble contract (docs/ENSEMBLE.md): a sweep spec parses and
// canonicalizes deterministically, swept parameters lower to trailing
// per-cell externals without disturbing the model's own external
// indices, a member's trajectory is bit-identical no matter how many
// other members share the packed population or how many threads step it,
// quarantine outcomes are reproducible, SIGKILL-shaped interruption plus
// resume lands bit-identically to an uninterrupted sweep for every
// layout x width, and checkpoints never cross the plain/ensemble wall.
//
//===----------------------------------------------------------------------===//

#include "easyml/Sema.h"
#include "models/Registry.h"
#include "sim/Checkpoint.h"
#include "sim/Ensemble.h"
#include "sim/Simulator.h"

#include <cstdio>
#include <filesystem>
#include <gtest/gtest.h>
#include <optional>
#include <unistd.h>

using namespace limpet;
using namespace limpet::exec;
using namespace limpet::sim;

namespace {

std::optional<easyml::ModelInfo> suiteInfo(const char *Name) {
  const models::ModelEntry *M = models::findModel(Name);
  EXPECT_NE(M, nullptr);
  DiagnosticEngine Diags;
  auto Info = easyml::compileModelInfo(M->Name, M->Source, Diags);
  EXPECT_TRUE(Info.has_value()) << Diags.str();
  return Info;
}

std::optional<EnsembleModel> buildHH(const char *Sweep, int64_t CellsPer,
                                     EngineConfig Cfg) {
  auto Info = suiteInfo("HodgkinHuxley");
  if (!Info)
    return std::nullopt;
  Expected<EnsembleSpec> Spec = EnsembleSpec::fromSweep(Sweep, CellsPer);
  EXPECT_TRUE(bool(Spec)) << Spec.status().message();
  if (!Spec)
    return std::nullopt;
  Expected<EnsembleModel> EM =
      buildEnsembleModel(*Info, std::move(*Spec), Cfg);
  EXPECT_TRUE(bool(EM)) << EM.status().message();
  if (!EM)
    return std::nullopt;
  return std::move(*EM);
}

SimOptions sweepOpts(int64_t Steps, unsigned Threads = 1) {
  SimOptions Opts;
  Opts.NumSteps = Steps;
  Opts.NumThreads = Threads;
  Opts.StimPeriod = 20.0;
  Opts.Guard.Enabled = true;
  return Opts;
}

std::string freshDir(const char *Tag) {
  std::string Dir = ::testing::TempDir() + "limpet-ens-" + Tag + "-" +
                    std::to_string(::getpid());
  std::filesystem::remove_all(Dir);
  std::filesystem::create_directories(Dir);
  return Dir;
}

/// The layout x width matrix the determinism claims must hold over.
std::vector<EngineConfig> coverageConfigs() {
  return {EngineConfig::baseline(), EngineConfig::limpetMLIR(4),
          EngineConfig::limpetMLIR(8), EngineConfig::autoVecLike(4)};
}

std::vector<double> allMemberChecksums(const EnsembleRunner &S) {
  std::vector<double> Out;
  for (int64_t M = 0; M != S.numMembers(); ++M)
    Out.push_back(S.memberChecksum(M));
  return Out;
}

/// Wall-clock accumulators are the one nondeterministic checkpoint field;
/// zero them so equal sweeps compare byte-for-byte.
CheckpointData normalized(CheckpointData C) {
  C.Report.ScanSeconds = 0;
  C.Report.RecoverySeconds = 0;
  C.Report.RunSeconds = 0;
  return C;
}

} // namespace

//===----------------------------------------------------------------------===//
// Spec parsing and canonicalization
//===----------------------------------------------------------------------===//

TEST(EnsembleSpecParse, GridCrossProductFirstAxisSlowest) {
  Expected<EnsembleSpec> S =
      EnsembleSpec::fromSweep("gK=10:20:3;gNa=100,120", /*CellsPerMember=*/2);
  ASSERT_TRUE(bool(S)) << S.status().message();
  EXPECT_EQ(S->numMembers(), 6);
  EXPECT_EQ(S->CellsPerMember, 2);
  EXPECT_EQ(S->numCells(), 12);
  EXPECT_EQ(S->sweptParams(), (std::vector<std::string>{"gK", "gNa"}));
  // Row-major: gK (first clause) is the slow axis.
  const double GK[] = {10, 10, 15, 15, 20, 20};
  const double GNa[] = {100, 120, 100, 120, 100, 120};
  for (int M = 0; M != 6; ++M) {
    ASSERT_EQ(S->Members[M].Overrides.size(), 2u);
    EXPECT_EQ(S->Members[M].Overrides[0].Name, "gK");
    EXPECT_EQ(S->Members[M].Overrides[0].Value, GK[M]) << "member " << M;
    EXPECT_EQ(S->Members[M].Overrides[1].Value, GNa[M]) << "member " << M;
  }
}

TEST(EnsembleSpecParse, SingleCountPinsLoAndHashIsCanonical) {
  Expected<EnsembleSpec> S = EnsembleSpec::fromSweep("gK=5:9:1");
  ASSERT_TRUE(bool(S));
  ASSERT_EQ(S->numMembers(), 1);
  EXPECT_EQ(S->Members[0].Overrides[0].Value, 5.0);

  // Identical sweeps hash identically; any value change re-keys the hash
  // (what lets a checkpoint refuse a different sweep).
  Expected<EnsembleSpec> A = EnsembleSpec::fromSweep("gNa=100,120", 2);
  Expected<EnsembleSpec> B = EnsembleSpec::fromSweep("gNa=100,120", 2);
  Expected<EnsembleSpec> C = EnsembleSpec::fromSweep("gNa=100,121", 2);
  Expected<EnsembleSpec> D = EnsembleSpec::fromSweep("gNa=100,120", 3);
  ASSERT_TRUE(bool(A) && bool(B) && bool(C) && bool(D));
  EXPECT_EQ(A->hash(), B->hash());
  EXPECT_NE(A->hash(), C->hash());
  EXPECT_NE(A->hash(), D->hash());
}

TEST(EnsembleSpecParse, MalformedSweepsAreRecoverableErrors) {
  const char *Bad[] = {
      "",              // empty expression
      "gK",            // no '='
      "=1,2",          // empty name
      "gK=",           // no values
      "gK=1:2",        // grid missing n
      "gK=1:2:0",      // n < 1
      "gK=1:2:2.5",    // non-integer n
      "gK=1,oops",     // non-numeric value
      "gK=1e999",      // overflows to +inf
      "gK=1,2;gK=3",   // duplicate axis
  };
  for (const char *Sweep : Bad)
    EXPECT_FALSE(bool(EnsembleSpec::fromSweep(Sweep))) << "'" << Sweep << "'";
  EXPECT_FALSE(bool(EnsembleSpec::fromSweep("gK=1", /*CellsPerMember=*/0)));
}

TEST(EnsembleSpecParse, JsonArrayAndWrapperForms) {
  Expected<EnsembleSpec> A =
      EnsembleSpec::fromJson("[{\"gK\":1},{\"gK\":2,\"gNa\":90}]", 4);
  ASSERT_TRUE(bool(A)) << A.status().message();
  EXPECT_EQ(A->numMembers(), 2);
  EXPECT_EQ(A->CellsPerMember, 4);
  EXPECT_EQ(A->Members[1].Overrides.size(), 2u);

  // The wrapper's cells_per_member overrides the argument.
  Expected<EnsembleSpec> B = EnsembleSpec::fromJson(
      "{\"cells_per_member\":3,\"members\":[{\"gK\":1}]}", 1);
  ASSERT_TRUE(bool(B));
  EXPECT_EQ(B->CellsPerMember, 3);

  EXPECT_FALSE(bool(EnsembleSpec::fromJson("not json")));
  EXPECT_FALSE(bool(EnsembleSpec::fromJson("[]")));
  EXPECT_FALSE(bool(EnsembleSpec::fromJson("[42]")));
  EXPECT_FALSE(bool(EnsembleSpec::fromJson("[{\"gK\":\"high\"}]")));
  EXPECT_FALSE(bool(EnsembleSpec::fromJson("{\"members\":[{\"gK\":1}]}", 0)));
}

//===----------------------------------------------------------------------===//
// Parameter lowering
//===----------------------------------------------------------------------===//

TEST(EnsembleLowering, SweptParamBecomesTrailingExternal) {
  auto Info = suiteInfo("HodgkinHuxley");
  ASSERT_TRUE(Info.has_value());
  int VmBefore = Info->externalIndex("Vm");
  size_t ExtsBefore = Info->Externals.size();
  ASSERT_GE(Info->paramIndex("gNa"), 0);

  Expected<easyml::ModelInfo> L = lowerSweptParams(*Info, {"gNa"});
  ASSERT_TRUE(bool(L)) << L.status().message();
  // Moved out of the parameter list...
  EXPECT_LT(L->paramIndex("gNa"), 0);
  // ...appended at the END of the externals, so Vm/Iion stay put.
  ASSERT_EQ(L->Externals.size(), ExtsBefore + 1);
  EXPECT_EQ(L->Externals.back().Name, "gNa");
  EXPECT_FALSE(L->Externals.back().IsComputed);
  EXPECT_EQ(L->externalIndex("Vm"), VmBefore);
  // Seeded with the parameter's default, so members without an override
  // run the stock model.
  EXPECT_EQ(L->Externals.back().Init,
            Info->Params[size_t(Info->paramIndex("gNa"))].DefaultValue);

  EXPECT_FALSE(bool(lowerSweptParams(*Info, {"nosuch"})));
  EXPECT_FALSE(bool(lowerSweptParams(*Info, {"Vm"}))); // shadows an external
}

TEST(EnsembleLowering, BuildRejectsUnknownParamAndBadSpecs) {
  auto Info = suiteInfo("HodgkinHuxley");
  ASSERT_TRUE(Info.has_value());
  Expected<EnsembleSpec> Spec = EnsembleSpec::fromSweep("nosuch=1,2");
  ASSERT_TRUE(bool(Spec));
  Expected<EnsembleModel> EM =
      buildEnsembleModel(*Info, std::move(*Spec), EngineConfig::baseline());
  ASSERT_FALSE(bool(EM));
  EXPECT_NE(EM.status().message().find("nosuch"), std::string::npos);

  EnsembleSpec Empty;
  EXPECT_FALSE(bool(
      buildEnsembleModel(*Info, Empty, EngineConfig::baseline())));
}

//===----------------------------------------------------------------------===//
// Determinism: packing, threading, reproducibility
//===----------------------------------------------------------------------===//

TEST(EnsembleDeterminism, MemberTrajectoryInvariantToPopulationAndThreads) {
  for (const EngineConfig &Cfg : coverageConfigs()) {
    // gNa = 80 + 5*M: member 4 of the big sweep runs the same point as
    // the solo sweep.
    auto Solo = buildHH("gNa=100", /*CellsPer=*/2, Cfg);
    auto Big = buildHH("gNa=80:125:10", /*CellsPer=*/2, Cfg);
    ASSERT_TRUE(Solo && Big);
    EnsembleRunner SSolo(*Solo, sweepOpts(200));
    SSolo.run();
    EnsembleRunner SBig(*Big, sweepOpts(200));
    SBig.run();
    ASSERT_EQ(SBig.numMembers(), 10);
    EXPECT_EQ(SSolo.memberChecksum(0), SBig.memberChecksum(4))
        << engineConfigName(Cfg)
        << ": member trajectory depends on the rest of the population";

    // Thread count must change nothing.
    for (unsigned Threads : {2u, 8u}) {
      EnsembleRunner ST(*Big, sweepOpts(200, Threads));
      ST.run();
      EXPECT_EQ(allMemberChecksums(ST), allMemberChecksums(SBig))
          << engineConfigName(Cfg) << " with " << Threads << " threads";
    }
  }
}

TEST(EnsembleDeterminism, QuarantineReproducibleAcrossRunsAndThreads) {
  auto EM = buildHH("gNa=120,1e9,90,110", /*CellsPer=*/2,
                    EngineConfig::limpetMLIR(4));
  ASSERT_TRUE(EM.has_value());
  auto RunOnce = [&](unsigned Threads) {
    EnsembleRunner S(*EM, sweepOpts(200, Threads));
    S.run();
    EXPECT_EQ(S.stepsDone(), 200);
    EXPECT_EQ(S.membersQuarantined(), 1);
    EXPECT_EQ(S.membersOk(), 3);
    EXPECT_EQ(S.memberStatus(1), MemberStatus::Quarantined);
    std::vector<MemberReport> R = S.memberReports();
    std::vector<double> Sums = allMemberChecksums(S);
    return std::make_pair(R, Sums);
  };
  auto [R1, Sum1] = RunOnce(1);
  auto [R2, Sum2] = RunOnce(1);
  auto [R4, Sum4] = RunOnce(4);
  EXPECT_EQ(Sum1, Sum2) << "same sweep, same process: not reproducible";
  EXPECT_EQ(Sum1, Sum4) << "quarantine outcome depends on thread count";
  for (size_t M = 0; M != R1.size(); ++M) {
    EXPECT_EQ(R1[M].Status, R4[M].Status) << "member " << M;
    EXPECT_EQ(R1[M].QuarantineStep, R4[M].QuarantineStep) << "member " << M;
  }
  // The quarantined member pinned early and says why.
  EXPECT_NE(R1[1].Reason, QuarantineReason::None);
  EXPECT_GE(R1[1].QuarantineStep, 0);
}

TEST(EnsembleDeterminism, NdjsonOneLinePerMember) {
  auto EM = buildHH("gNa=120,1e9,90", /*CellsPer=*/1,
                    EngineConfig::limpetMLIR(4));
  ASSERT_TRUE(EM.has_value());
  EnsembleRunner S(*EM, sweepOpts(100));
  S.run();
  std::string Nd = S.memberStatsNdjson();
  size_t Lines = 0;
  for (char Ch : Nd)
    Lines += Ch == '\n';
  EXPECT_EQ(Lines, 3u);
  EXPECT_NE(Nd.find("\"member\":0"), std::string::npos);
  EXPECT_NE(Nd.find("\"status\":\"quarantined\""), std::string::npos);
  EXPECT_NE(Nd.find("\"checksum\":"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Interruption + resume (the SIGKILL -> --resume path, per layout x width)
//===----------------------------------------------------------------------===//

TEST(EnsembleResume, BitIdenticalAfterInterruptPerLayoutAndWidth) {
  for (const EngineConfig &Cfg : coverageConfigs()) {
    auto EM = buildHH("gNa=120,1e9,90,110", /*CellsPer=*/2, Cfg);
    ASSERT_TRUE(EM.has_value());
    std::string Dir = freshDir(engineConfigName(Cfg).c_str());

    // A shutdown request lands at step 100 — after the poison member has
    // already been quarantined inside the first scan window.
    clearShutdownRequest();
    SimOptions Opts = sweepOpts(200);
    Opts.Checkpoint.Dir = Dir;
    Opts.Checkpoint.EveryN = 24;
    EnsembleRunner S(*EM, Opts);
    S.setFaultInjector([](Simulator &Sim) {
      if (Sim.stepsDone() == 100)
        requestShutdown();
    });
    S.run();
    clearShutdownRequest();
    ASSERT_TRUE(S.interrupted()) << engineConfigName(Cfg);
    ASSERT_LT(S.stepsDone(), 200);
    ASSERT_EQ(S.membersQuarantined(), 1);

    CheckpointStore Store(Dir);
    Expected<CheckpointData> C = Store.loadNewestValid();
    ASSERT_TRUE(bool(C)) << C.status().message();
    EXPECT_EQ(C->EnsembleMembers, 4);
    EXPECT_EQ(C->EnsembleStatus.size(), 4u);
    EXPECT_EQ(C->EnsembleStatus[1].Status,
              uint8_t(MemberStatus::Quarantined));

    // A fresh runner (fresh process, morally) resumes and finishes.
    EnsembleRunner Resumed(*EM, sweepOpts(200));
    ASSERT_TRUE(Resumed.resumeFrom(*C).isOk()) << engineConfigName(Cfg);
    EXPECT_EQ(Resumed.membersQuarantined(), 1)
        << "resume dropped the quarantine";
    Resumed.run();
    EXPECT_EQ(Resumed.stepsDone(), 200);

    EnsembleRunner Ref(*EM, sweepOpts(200));
    Ref.run();
    EXPECT_EQ(serializeCheckpoint(normalized(Resumed.captureCheckpoint())),
              serializeCheckpoint(normalized(Ref.captureCheckpoint())))
        << engineConfigName(Cfg)
        << ": resumed sweep diverged from uninterrupted";
    EXPECT_EQ(allMemberChecksums(Resumed), allMemberChecksums(Ref));
    std::filesystem::remove_all(Dir);
  }
}

TEST(EnsembleResume, CheckpointsNeverCrossThePlainEnsembleWall) {
  auto EM = buildHH("gNa=120,90", /*CellsPer=*/2,
                    EngineConfig::limpetMLIR(4));
  ASSERT_TRUE(EM.has_value());
  EnsembleRunner S(*EM, sweepOpts(64));
  S.run();
  CheckpointData EnsCkpt = S.captureCheckpoint();
  ASSERT_EQ(EnsCkpt.EnsembleMembers, 2);

  // A plain simulator on the very same lowered model (shape matches, so
  // only the ensemble section can refuse) must not continue the sweep:
  // it cannot restore the per-member status.
  SimOptions Plain;
  Plain.NumCells = 4;
  Plain.NumSteps = 64;
  Plain.StimPeriod = 20.0;
  Simulator P(EM->model(), Plain);
  Status St = P.resumeFrom(EnsCkpt);
  ASSERT_FALSE(St.isOk());
  EXPECT_NE(St.message().find("ensemble"), std::string::npos);

  // And the runner refuses a plain checkpoint of the same shape.
  P.run();
  CheckpointData PlainCkpt = P.captureCheckpoint();
  EnsembleRunner R2(*EM, sweepOpts(64));
  St = R2.resumeFrom(PlainCkpt);
  ASSERT_FALSE(St.isOk());
  EXPECT_NE(St.message().find("not an ensemble"), std::string::npos);

  // Same member shape, different parameter points: spec hash refuses.
  auto Other = buildHH("gNa=121,90", /*CellsPer=*/2,
                       EngineConfig::limpetMLIR(4));
  ASSERT_TRUE(Other.has_value());
  EnsembleRunner R3(*Other, sweepOpts(64));
  St = R3.resumeFrom(EnsCkpt);
  ASSERT_FALSE(St.isOk());
  EXPECT_NE(St.message().find("spec hash"), std::string::npos);

  // Same total cells, different member split: the shape check names it.
  auto Split = buildHH("gNa=120,90,100,110", /*CellsPer=*/1,
                       EngineConfig::limpetMLIR(4));
  ASSERT_TRUE(Split.has_value());
  EnsembleRunner R4(*Split, sweepOpts(64));
  St = R4.resumeFrom(EnsCkpt);
  ASSERT_FALSE(St.isOk());
  EXPECT_NE(St.message().find("shape"), std::string::npos);

  // The matching runner accepts.
  EnsembleRunner R5(*EM, sweepOpts(64));
  EXPECT_TRUE(R5.resumeFrom(EnsCkpt).isOk());
}
