//===- SchedulerTests.cpp - sim/Scheduler unit tests ----------------------===//

#include "easyml/Sema.h"
#include "models/Registry.h"
#include "runtime/ThreadPool.h"
#include "sim/CancelToken.h"
#include "sim/Checkpoint.h"
#include "sim/Multimodel.h"
#include "sim/Scheduler.h"
#include "sim/Simulator.h"

#include <atomic>
#include <filesystem>
#include <gtest/gtest.h>
#include <mutex>
#include <thread>
#include <unistd.h>

using namespace limpet;
using namespace limpet::exec;
using namespace limpet::sim;

namespace {

std::optional<CompiledModel> compileByName(const char *Name,
                                           EngineConfig Cfg) {
  const models::ModelEntry *M = models::findModel(Name);
  EXPECT_NE(M, nullptr);
  DiagnosticEngine Diags;
  auto Info = easyml::compileModelInfo(M->Name, M->Source, Diags);
  EXPECT_TRUE(Info.has_value()) << Diags.str();
  return CompiledModel::compile(*Info, Cfg);
}

TEST(ShardPlan, CoversRangeDisjointlyOnBlockBoundaries) {
  for (int64_t Cells : {1, 7, 64, 131, 4096}) {
    for (unsigned Threads : {1u, 2u, 3u, 8u}) {
      for (unsigned BW : {1u, 4u, 8u}) {
        ShardPlan P = ShardPlan::build(Cells, Threads, BW);
        ASSERT_FALSE(P.Shards.empty());
        int64_t Expect = 0;
        for (const ShardPlan::Shard &S : P.Shards) {
          EXPECT_EQ(S.Begin, Expect); // contiguous and disjoint
          EXPECT_LT(S.Begin, S.End);
          EXPECT_EQ(S.Begin % int64_t(BW), 0); // block-aligned starts
          Expect = S.End;
        }
        EXPECT_EQ(Expect, Cells);
        EXPECT_LE(P.Shards.size(), size_t(Threads));
      }
    }
  }
}

TEST(ShardPlan, MatchesThreadPoolStaticChunkOverBlocks) {
  // The plan must reproduce the pre-refactor driver chunking exactly:
  // staticChunk over whole blocks, clipped to NumCells.
  const int64_t Cells = 131;
  const unsigned Threads = 4, BW = 8;
  ShardPlan P = ShardPlan::build(Cells, Threads, BW);
  int64_t NumBlocks = (Cells + BW - 1) / BW;
  size_t Next = 0;
  for (unsigned I = 0; I != Threads; ++I) {
    int64_t B, E;
    runtime::ThreadPool::staticChunk(0, NumBlocks, I, Threads, B, E);
    if (B >= E)
      continue;
    ASSERT_LT(Next, P.Shards.size());
    EXPECT_EQ(P.Shards[Next].Begin, B * BW);
    EXPECT_EQ(P.Shards[Next].End, std::min(E * int64_t(BW), Cells));
    ++Next;
  }
  EXPECT_EQ(Next, P.Shards.size());
}

TEST(Scheduler, ShardToThreadAssignmentIsStableAcrossSteps) {
  Scheduler Sched(1024, 4, 1);
  ASSERT_EQ(Sched.numShards(), 4u);
  std::vector<std::thread::id> First(4), Second(4);
  Sched.forEachShard([&](unsigned S, int64_t, int64_t) {
    First[S] = std::this_thread::get_id();
  });
  Sched.forEachShard([&](unsigned S, int64_t, int64_t) {
    Second[S] = std::this_thread::get_id();
  });
  for (unsigned S = 0; S != 4; ++S)
    EXPECT_EQ(First[S], Second[S]) << "shard " << S << " migrated";
}

TEST(Scheduler, VoltageStepMatchesSerialLoop) {
  const int64_t Cells = 263;
  std::vector<double> Vm(Cells), Iion(Cells), Ref(Cells);
  for (int64_t C = 0; C != Cells; ++C) {
    Vm[C] = Ref[C] = -80.0 + double(C);
    Iion[C] = 0.125 * double(C);
  }
  Scheduler Sched(Cells, 8, 4);
  Sched.voltageStep(Vm.data(), Iion.data(), 30.0, 0.01);
  for (int64_t C = 0; C != Cells; ++C) {
    Ref[C] += 0.01 * (30.0 - Iion[C]);
    EXPECT_DOUBLE_EQ(Vm[C], Ref[C]) << C;
  }
}

/// Kernels are cell-local, so the same protocol must produce bit-identical
/// populations for any shard count — and for repeated runs.
TEST(Scheduler, SimulatorDeterministicAcrossShardCounts) {
  auto M = compileByName("Courtemanche", EngineConfig::limpetMLIR(4));
  auto RunWith = [&](unsigned Threads) {
    SimOptions Opts;
    Opts.NumCells = 131; // ragged: 131 % 4 != 0
    Opts.NumSteps = 50;
    Opts.NumThreads = Threads;
    Opts.StimStrength = 40.0;
    Simulator S(*M, Opts);
    S.run();
    return S.stateChecksum();
  };
  double Serial = RunWith(1);
  EXPECT_DOUBLE_EQ(RunWith(2), Serial);
  EXPECT_DOUBLE_EQ(RunWith(8), Serial);
  EXPECT_DOUBLE_EQ(RunWith(1), Serial); // repeatable, not just equal once
  EXPECT_DOUBLE_EQ(RunWith(8), Serial);
}

TEST(Scheduler, MultimodelDeterministicAcrossShardCounts) {
  // Threading must not perturb the gather/compute/scatter hook pipeline.
  constexpr const char ParentSrc[] = R"(
Vm; .external(); .nodal();
Iion; .external(); .nodal();
Vm_init = -80.0;
group{ g = 0.3; E = -80.0; }.param();
diff_w = 0.05*((Vm - E) - 4.0*w);
w_init = 0.0;
Iion = g*(Vm - E) + 0.1*w;
)";
  constexpr const char PluginSrc[] = R"(
Vm; .external(); .nodal();
Iion; .external(); .nodal();
w_parent; .external(); .nodal();
group{ k = 0.2; }.param();
diff_mirror = 10.0*(w_parent - mirror);
mirror_init = 0.0;
Iion = Iion + k*w_parent;
)";
  DiagnosticEngine Diags;
  auto ParentInfo = easyml::compileModelInfo("p", ParentSrc, Diags);
  auto PluginInfo = easyml::compileModelInfo("sac", PluginSrc, Diags);
  ASSERT_TRUE(ParentInfo && PluginInfo) << Diags.str();
  auto Parent = CompiledModel::compile(*ParentInfo, EngineConfig::baseline());
  auto Plugin = CompiledModel::compile(*PluginInfo, EngineConfig::baseline());
  ASSERT_TRUE(Parent && Plugin);

  auto RunWith = [&](unsigned Threads) {
    SimOptions Opts;
    Opts.NumCells = 97;
    Opts.NumSteps = 100;
    Opts.NumThreads = Threads;
    Opts.StimStrength = 20.0;
    MultimodelSimulator Multi(*Parent, Opts);
    Multi.addPlugin(*Plugin, {{"w_parent", "w", /*Writable=*/false}});
    Multi.run();
    std::vector<double> Out;
    for (int64_t C = 0; C != Opts.NumCells; ++C) {
      Out.push_back(Multi.vm(C));
      Out.push_back(Multi.parentState(C, 0));
      Out.push_back(Multi.pluginState(0, C, 0));
    }
    return Out;
  };
  std::vector<double> Serial = RunWith(1);
  std::vector<double> Threaded = RunWith(4);
  ASSERT_EQ(Serial.size(), Threaded.size());
  for (size_t I = 0; I != Serial.size(); ++I)
    EXPECT_DOUBLE_EQ(Serial[I], Threaded[I]) << I;
}

//===----------------------------------------------------------------------===//
// Mid-run cancellation (sim/CancelToken, polled at step boundaries)
//===----------------------------------------------------------------------===//

/// A unique, empty temp directory per cancellation case.
std::string cancelDir(const char *Tag) {
  std::string Dir = ::testing::TempDir() + "limpet-cancel-" + Tag + "-" +
                    std::to_string(::getpid());
  std::filesystem::remove_all(Dir);
  std::filesystem::create_directories(Dir);
  return Dir;
}

/// Zeroes the wall-clock accumulators so checkpoints of equal
/// simulations compare byte-for-byte.
CheckpointData normalizedCkpt(CheckpointData C) {
  C.Report.ScanSeconds = 0;
  C.Report.RecoverySeconds = 0;
  C.Report.RunSeconds = 0;
  return C;
}

/// Cancelling mid-run stops the simulator at the next step/window
/// boundary with StopReason::Cancelled and a final durable checkpoint,
/// and a fresh simulator resuming from that checkpoint finishes
/// bit-identically to a run that was never cancelled — across shard
/// counts and with the guard rails on or off.
TEST(Cancellation, StopsAtBoundaryAndCheckpointResumesBitIdentically) {
  auto Model = compileByName("HodgkinHuxley", EngineConfig::limpetMLIR(4));
  ASSERT_TRUE(Model.has_value());
  constexpr int64_t Cells = 32, Steps = 200, CancelAt = 100;

  for (unsigned Threads : {1u, 2u, 8u}) {
    for (bool Guard : {false, true}) {
      SCOPED_TRACE("threads=" + std::to_string(Threads) +
                   " guard=" + std::to_string(Guard));
      std::string Dir =
          cancelDir((std::to_string(Threads) + (Guard ? "g" : "u")).c_str());

      SimOptions Opts;
      Opts.NumCells = Cells;
      Opts.NumSteps = Steps;
      Opts.NumThreads = Threads;
      Opts.StimPeriod = 20.0;
      Opts.Guard.Enabled = Guard;
      Opts.Checkpoint.Dir = Dir;
      Opts.Checkpoint.EveryN = 24;

      CancelToken Token;
      Opts.Cancel = &Token;
      Simulator S(*Model, Opts);
      S.setFaultInjector([&Token](Simulator &Sim) {
        if (Sim.stepsDone() == CancelAt)
          Token.cancel();
      });
      S.run();

      // Cooperative stop: at the very next boundary (the next step
      // unguarded, the enclosing scan window guarded), never later than
      // the run target.
      EXPECT_TRUE(S.interrupted());
      EXPECT_EQ(S.stopReason(), StopReason::Cancelled);
      EXPECT_GE(S.stepsDone(), CancelAt);
      EXPECT_LT(S.stepsDone(), Steps);
      if (!Guard)
        EXPECT_EQ(S.stepsDone(), CancelAt);

      // The final durable checkpoint captures the interrupted step...
      CheckpointStore Store(Dir);
      Expected<CheckpointData> C = Store.loadNewestValid();
      ASSERT_TRUE(bool(C)) << C.status().message();
      EXPECT_EQ(C->StepCount, S.stepsDone());
      EXPECT_EQ(serializeCheckpoint(normalizedCkpt(*C)),
                serializeCheckpoint(normalizedCkpt(S.captureCheckpoint())));

      // ...and resuming from it finishes bit-identically to an
      // uninterrupted run of the same protocol.
      SimOptions Plain;
      Plain.NumCells = Cells;
      Plain.NumSteps = Steps;
      Plain.NumThreads = Threads;
      Plain.StimPeriod = 20.0;
      Plain.Guard.Enabled = Guard;
      Simulator Resumed(*Model, Plain);
      ASSERT_TRUE(Resumed.resumeFrom(*C).isOk());
      Resumed.run();
      EXPECT_FALSE(Resumed.interrupted());
      EXPECT_EQ(Resumed.stepsDone(), Steps);

      Simulator Ref(*Model, Plain);
      Ref.run();
      EXPECT_EQ(serializeCheckpoint(normalizedCkpt(Resumed.captureCheckpoint())),
                serializeCheckpoint(normalizedCkpt(Ref.captureCheckpoint())));

      std::filesystem::remove_all(Dir);
    }
  }
}

/// A cancel before the first step still stops at the first boundary and
/// leaves a resumable checkpoint — the "cancel raced the dispatch" shape
/// the daemon hits when a client cancels a job the instant it starts.
TEST(Cancellation, ImmediateCancelStopsAtFirstBoundary) {
  auto Model = compileByName("HodgkinHuxley", EngineConfig::baseline());
  ASSERT_TRUE(Model.has_value());
  std::string Dir = cancelDir("immediate");

  SimOptions Opts;
  Opts.NumCells = 8;
  Opts.NumSteps = 100;
  Opts.StimPeriod = 20.0;
  Opts.Checkpoint.Dir = Dir;

  CancelToken Token;
  Token.cancel();
  Opts.Cancel = &Token;
  Simulator S(*Model, Opts);
  S.run();
  EXPECT_TRUE(S.interrupted());
  EXPECT_EQ(S.stopReason(), StopReason::Cancelled);
  EXPECT_LE(S.stepsDone(), 1);
  Expected<CheckpointData> C = CheckpointStore(Dir).loadNewestValid();
  ASSERT_TRUE(bool(C)) << C.status().message();
  EXPECT_EQ(C->StepCount, S.stepsDone());
  std::filesystem::remove_all(Dir);
}

/// An unarmed token is free: a run with a token that never fires is
/// bit-identical to a run with no token at all.
TEST(Cancellation, UnarmedTokenDoesNotPerturbTheRun) {
  auto Model = compileByName("HodgkinHuxley", EngineConfig::limpetMLIR(4));
  ASSERT_TRUE(Model.has_value());
  SimOptions Opts;
  Opts.NumCells = 16;
  Opts.NumSteps = 100;
  Opts.StimPeriod = 20.0;

  CancelToken Token;
  SimOptions WithToken = Opts;
  WithToken.Cancel = &Token;
  Simulator A(*Model, WithToken);
  A.run();
  Simulator B(*Model, Opts);
  B.run();
  EXPECT_FALSE(A.interrupted());
  EXPECT_EQ(A.stopReason(), StopReason::None);
  EXPECT_EQ(serializeCheckpoint(normalizedCkpt(A.captureCheckpoint())),
            serializeCheckpoint(normalizedCkpt(B.captureCheckpoint())));
}

//===----------------------------------------------------------------------===//
// Multi-stage StagePlan (Strang pipeline plumbing)
//===----------------------------------------------------------------------===//

/// The stage barrier: every shard of stage A completes before any shard
/// of stage B starts — B's hooks must observe A fully applied across the
/// whole range, not just their own shard.
TEST(StagePlan, BarrierOrdersStagesAcrossShards) {
  const int64_t Cells = 1000;
  Scheduler Sched(Cells, 8, 1);
  const unsigned Shards = Sched.numShards();
  ASSERT_GT(Shards, 1u);

  std::vector<double> Field(Cells, 0.0);
  std::atomic<unsigned> ADone{0};
  std::atomic<bool> BSawPartialA{false};

  PipelineStage A;
  A.Name = "publish";
  A.Run = [&](unsigned, int64_t Begin, int64_t End) {
    for (int64_t I = Begin; I != End; ++I)
      Field[size_t(I)] = 1.0;
    ADone.fetch_add(1, std::memory_order_acq_rel);
  };
  PipelineStage B;
  B.Name = "apply";
  B.Run = [&](unsigned, int64_t, int64_t) {
    // Any shard of B running before all of A finished is a barrier bug.
    if (ADone.load(std::memory_order_acquire) != Shards)
      BSawPartialA.store(true);
    for (double V : Field)
      if (V != 1.0)
        BSawPartialA.store(true);
  };
  StagePlan Plan;
  Plan.Stages.push_back(A);
  Plan.Stages.push_back(B);

  for (int Rep = 0; Rep != 50; ++Rep) {
    std::fill(Field.begin(), Field.end(), 0.0);
    ADone.store(0);
    Sched.runPlan(Plan, 0.01, 0.0);
    EXPECT_FALSE(BSawPartialA.load()) << "rep " << Rep;
  }
}

/// Stage hooks see exactly the persistent shard partition — the same
/// (Shard, Begin, End) triples the kernel path uses — and a plan's
/// stages run in declaration order.
TEST(StagePlan, HooksSeeShardRangesInStageOrder) {
  const int64_t Cells = 131;
  Scheduler Sched(Cells, 4, 1);
  struct Seen {
    std::string Stage;
    unsigned Shard;
    int64_t Begin, End;
  };
  std::mutex Mu;
  std::vector<Seen> Log;
  auto Hook = [&](const char *Name) {
    return [&, Name](unsigned Shard, int64_t Begin, int64_t End) {
      std::lock_guard<std::mutex> Lock(Mu);
      Log.push_back({Name, Shard, Begin, End});
    };
  };
  StagePlan Plan;
  PipelineStage S1, S2, S3;
  S1.Name = "one";
  S1.Run = Hook("one");
  S2.Name = "two";
  S2.Run = Hook("two");
  S3.Name = "three";
  S3.Run = Hook("three");
  Plan.Stages = {S1, S2, S3};
  Sched.runPlan(Plan, 0.01, 0.0);

  const ShardPlan &P = Sched.plan();
  ASSERT_EQ(Log.size(), 3 * P.Shards.size());
  const char *Order[] = {"one", "two", "three"};
  for (size_t Stage = 0; Stage != 3; ++Stage) {
    std::vector<bool> Covered(P.Shards.size(), false);
    for (size_t I = Stage * P.Shards.size();
         I != (Stage + 1) * P.Shards.size(); ++I) {
      EXPECT_EQ(Log[I].Stage, Order[Stage]);
      ASSERT_LT(Log[I].Shard, P.Shards.size());
      EXPECT_EQ(Log[I].Begin, P.Shards[Log[I].Shard].Begin);
      EXPECT_EQ(Log[I].End, P.Shards[Log[I].Shard].End);
      Covered[Log[I].Shard] = true;
    }
    for (bool C : Covered)
      EXPECT_TRUE(C);
  }
}

/// An empty plan and a stage with neither kernels nor a hook are both
/// harmless no-ops.
TEST(StagePlan, EmptyStagesAreNoOps) {
  Scheduler Sched(64, 2, 1);
  StagePlan Empty;
  Sched.runPlan(Empty, 0.01, 0.0);
  PipelineStage Hollow;
  Hollow.Name = "hollow";
  StagePlan P;
  P.Stages.push_back(Hollow);
  Sched.runPlan(P, 0.01, 0.0); // must not crash or deadlock
  SUCCEED();
}

TEST(Scheduler, RebuildRealignsToNewBlockWidth) {
  Scheduler Sched(100, 4, 1);
  EXPECT_EQ(Sched.plan().BlockWidth, 1u);
  Sched.rebuild(8);
  EXPECT_EQ(Sched.plan().BlockWidth, 8u);
  for (const ShardPlan::Shard &S : Sched.plan().Shards)
    EXPECT_EQ(S.Begin % 8, 0);
  EXPECT_EQ(Sched.plan().Shards.back().End, 100);
}

} // namespace
