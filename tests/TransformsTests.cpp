//===- TransformsTests.cpp - pass unit tests ---------------------------------===//

#include "dialects/Dialects.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "transforms/FoldUtils.h"
#include "transforms/Pass.h"

#include <cmath>

#include <gtest/gtest.h>

using namespace limpet;
using namespace limpet::ir;
using namespace limpet::transforms;

namespace {

/// Counts ops of a given opcode in a function.
unsigned countOps(Operation *Func, OpCode Code) {
  unsigned N = 0;
  Func->walk([&](Operation *Op) { N += Op->opcode() == Code; });
  return N;
}

unsigned countAllOps(Operation *Func) {
  unsigned N = 0;
  Func->walk([&](Operation *Op) { N += Op != Func; });
  return N;
}

/// Runs one pass and verifies the result.
bool runPass(std::unique_ptr<Pass> P, Operation *Func, Context &Ctx) {
  bool Changed = P->run(Func, Ctx);
  VerifyResult R = verifyFunction(Func);
  EXPECT_TRUE(R) << R.Message;
  return Changed;
}

//===----------------------------------------------------------------------===//
// Constant folding
//===----------------------------------------------------------------------===//

TEST(ConstantFold, FoldsArithChains) {
  Context Ctx;
  auto Func = makeFunction(Ctx, "f", {Ctx.memref(), Ctx.i64()});
  Block &Body = funcBody(Func.get());
  OpBuilder B(Ctx);
  B.setInsertionPointToEnd(&Body);
  // (2 + 3) * 4 -> 20, stored so it is not DCE'd.
  Value *Sum = makeAddF(B, makeConstantF(B, 2.0), makeConstantF(B, 3.0));
  Value *Prod = makeMulF(B, Sum, makeConstantF(B, 4.0));
  makeMemStore(B, Prod, Body.argument(0), Body.argument(1));
  makeReturn(B);

  EXPECT_TRUE(runPass(createConstantFoldPass(), Func.get(), Ctx));
  runPass(createDCEPass(), Func.get(), Ctx);
  EXPECT_EQ(countOps(Func.get(), OpCode::ArithAddF), 0u);
  EXPECT_EQ(countOps(Func.get(), OpCode::ArithMulF), 0u);
  // The store's operand is now a single constant with value 20.
  bool Found20 = false;
  Func->walk([&](Operation *Op) {
    if (Op->opcode() == OpCode::ArithConstantF &&
        Op->attr("value").asFloat() == 20.0)
      Found20 = true;
  });
  EXPECT_TRUE(Found20);
}

TEST(ConstantFold, FoldsMathCalls) {
  Context Ctx;
  auto Func = makeFunction(Ctx, "f", {Ctx.memref(), Ctx.i64()});
  Block &Body = funcBody(Func.get());
  OpBuilder B(Ctx);
  B.setInsertionPointToEnd(&Body);
  Value *E = makeMathUnary(B, OpCode::MathExp, makeConstantF(B, 0.0));
  makeMemStore(B, E, Body.argument(0), Body.argument(1));
  makeReturn(B);

  EXPECT_TRUE(runPass(createConstantFoldPass(), Func.get(), Ctx));
  EXPECT_EQ(countOps(Func.get(), OpCode::MathExp), 0u);
}

TEST(ConstantFold, FoldsComparisonsAndSelect) {
  Context Ctx;
  auto Func = makeFunction(Ctx, "f", {Ctx.memref(), Ctx.i64(), Ctx.f64()});
  Block &Body = funcBody(Func.get());
  OpBuilder B(Ctx);
  B.setInsertionPointToEnd(&Body);
  Value *Cond = makeCmpF(B, CmpPredicate::LT, makeConstantF(B, 1.0),
                         makeConstantF(B, 2.0));
  Value *Sel = makeSelect(B, Cond, Body.argument(2), makeConstantF(B, 9.0));
  makeMemStore(B, Sel, Body.argument(0), Body.argument(1));
  makeReturn(B);

  runPass(createConstantFoldPass(), Func.get(), Ctx);
  // Canonicalize forwards select(true, x, _) -> x.
  runPass(createCanonicalizePass(), Func.get(), Ctx);
  runPass(createDCEPass(), Func.get(), Ctx);
  EXPECT_EQ(countOps(Func.get(), OpCode::ArithSelect), 0u);
  EXPECT_EQ(countOps(Func.get(), OpCode::ArithCmpF), 0u);
}

TEST(ConstantFold, LeavesRuntimeValuesAlone) {
  Context Ctx;
  auto Func = makeFunction(Ctx, "f", {Ctx.memref(), Ctx.i64(), Ctx.f64()});
  Block &Body = funcBody(Func.get());
  OpBuilder B(Ctx);
  B.setInsertionPointToEnd(&Body);
  Value *Sum = makeAddF(B, Body.argument(2), makeConstantF(B, 1.0));
  makeMemStore(B, Sum, Body.argument(0), Body.argument(1));
  makeReturn(B);

  EXPECT_FALSE(runPass(createConstantFoldPass(), Func.get(), Ctx));
  EXPECT_EQ(countOps(Func.get(), OpCode::ArithAddF), 1u);
}

//===----------------------------------------------------------------------===//
// Canonicalize
//===----------------------------------------------------------------------===//

TEST(Canonicalize, AlgebraicIdentities) {
  Context Ctx;
  auto Func = makeFunction(Ctx, "f", {Ctx.memref(), Ctx.i64(), Ctx.f64()});
  Block &Body = funcBody(Func.get());
  Value *X = Body.argument(2);
  OpBuilder B(Ctx);
  B.setInsertionPointToEnd(&Body);
  Value *Zero = makeConstantF(B, 0.0);
  Value *One = makeConstantF(B, 1.0);
  Value *A = makeAddF(B, X, Zero);       // x + 0 -> x
  Value *M = makeMulF(B, One, A);        // 1 * x -> x
  Value *D = makeDivF(B, M, One);        // x / 1 -> x
  Value *N = makeNegF(B, makeNegF(B, D)); // --x -> x
  makeMemStore(B, N, Body.argument(0), Body.argument(1));
  makeReturn(B);

  EXPECT_TRUE(runPass(createCanonicalizePass(), Func.get(), Ctx));
  runPass(createDCEPass(), Func.get(), Ctx);
  // Only the store remains (plus func-level bookkeeping).
  EXPECT_EQ(countOps(Func.get(), OpCode::ArithAddF), 0u);
  EXPECT_EQ(countOps(Func.get(), OpCode::ArithMulF), 0u);
  EXPECT_EQ(countOps(Func.get(), OpCode::ArithDivF), 0u);
  EXPECT_EQ(countOps(Func.get(), OpCode::ArithNegF), 0u);
  // The store now stores the argument directly.
  Func->walk([&](Operation *Op) {
    if (Op->opcode() == OpCode::MemStore)
      EXPECT_EQ(Op->operand(0), X);
  });
}

TEST(Canonicalize, PowStrengthReduction) {
  Context Ctx;
  auto Func = makeFunction(Ctx, "f", {Ctx.memref(), Ctx.i64(), Ctx.f64()});
  Block &Body = funcBody(Func.get());
  OpBuilder B(Ctx);
  B.setInsertionPointToEnd(&Body);
  Value *P2 = makePow(B, Body.argument(2), makeConstantF(B, 2.0));
  Value *P05 = makePow(B, P2, makeConstantF(B, 0.5));
  makeMemStore(B, P05, Body.argument(0), Body.argument(1));
  makeReturn(B);

  EXPECT_TRUE(runPass(createCanonicalizePass(), Func.get(), Ctx));
  EXPECT_EQ(countOps(Func.get(), OpCode::MathPow), 0u);
  EXPECT_EQ(countOps(Func.get(), OpCode::ArithMulF), 1u);
  EXPECT_EQ(countOps(Func.get(), OpCode::MathSqrt), 1u);
}

TEST(Canonicalize, SelectSameArms) {
  Context Ctx;
  auto Func = makeFunction(Ctx, "f", {Ctx.memref(), Ctx.i64(), Ctx.f64()});
  Block &Body = funcBody(Func.get());
  OpBuilder B(Ctx);
  B.setInsertionPointToEnd(&Body);
  Value *Cond = makeCmpF(B, CmpPredicate::LT, Body.argument(2),
                         makeConstantF(B, 0.0));
  Value *Sel = makeSelect(B, Cond, Body.argument(2), Body.argument(2));
  makeMemStore(B, Sel, Body.argument(0), Body.argument(1));
  makeReturn(B);

  EXPECT_TRUE(runPass(createCanonicalizePass(), Func.get(), Ctx));
  runPass(createDCEPass(), Func.get(), Ctx);
  EXPECT_EQ(countOps(Func.get(), OpCode::ArithSelect), 0u);
  EXPECT_EQ(countOps(Func.get(), OpCode::ArithCmpF), 0u);
}

//===----------------------------------------------------------------------===//
// CSE
//===----------------------------------------------------------------------===//

TEST(CSE, DeduplicatesPureOps) {
  Context Ctx;
  auto Func = makeFunction(Ctx, "f", {Ctx.memref(), Ctx.i64(), Ctx.f64()});
  Block &Body = funcBody(Func.get());
  Value *X = Body.argument(2);
  OpBuilder B(Ctx);
  B.setInsertionPointToEnd(&Body);
  Value *E1 = makeMathUnary(B, OpCode::MathExp, X);
  Value *E2 = makeMathUnary(B, OpCode::MathExp, X);
  Value *Sum = makeAddF(B, E1, E2);
  makeMemStore(B, Sum, Body.argument(0), Body.argument(1));
  makeReturn(B);

  EXPECT_TRUE(runPass(createCSEPass(), Func.get(), Ctx));
  EXPECT_EQ(countOps(Func.get(), OpCode::MathExp), 1u);
}

TEST(CSE, RespectsDifferingAttributes) {
  Context Ctx;
  auto Func = makeFunction(Ctx, "f", {Ctx.memref(), Ctx.i64(), Ctx.f64()});
  Block &Body = funcBody(Func.get());
  Value *X = Body.argument(2);
  OpBuilder B(Ctx);
  B.setInsertionPointToEnd(&Body);
  Value *C1 = makeCmpF(B, CmpPredicate::LT, X, X);
  Value *C2 = makeCmpF(B, CmpPredicate::GT, X, X);
  Value *A = makeAndI(B, C1, C2);
  Value *Sel = makeSelect(B, A, X, X);
  makeMemStore(B, Sel, Body.argument(0), Body.argument(1));
  makeReturn(B);

  EXPECT_FALSE(runPass(createCSEPass(), Func.get(), Ctx));
  EXPECT_EQ(countOps(Func.get(), OpCode::ArithCmpF), 2u);
}

TEST(CSE, DoesNotMergeLoads) {
  // Loads are read-only, not pure: a store may intervene.
  Context Ctx;
  auto Func = makeFunction(Ctx, "f", {Ctx.memref(), Ctx.i64(), Ctx.f64()});
  Block &Body = funcBody(Func.get());
  OpBuilder B(Ctx);
  B.setInsertionPointToEnd(&Body);
  Value *L1 = makeMemLoad(B, Body.argument(0), Body.argument(1));
  makeMemStore(B, Body.argument(2), Body.argument(0), Body.argument(1));
  Value *L2 = makeMemLoad(B, Body.argument(0), Body.argument(1));
  Value *Sum = makeAddF(B, L1, L2);
  makeMemStore(B, Sum, Body.argument(0), Body.argument(1));
  makeReturn(B);

  runPass(createCSEPass(), Func.get(), Ctx);
  EXPECT_EQ(countOps(Func.get(), OpCode::MemLoad), 2u);
}

TEST(CSE, OuterValuesVisibleInLoopBody) {
  Context Ctx;
  auto Func = makeFunction(Ctx, "f", {Ctx.i64(), Ctx.i64(), Ctx.f64()});
  Block &Body = funcBody(Func.get());
  OpBuilder B(Ctx);
  B.setInsertionPointToEnd(&Body);
  Value *Outer = makeMathUnary(B, OpCode::MathExp, Body.argument(2));
  Value *Step = makeConstantI(B, 1);
  Operation *For = makeFor(B, Body.argument(0), Body.argument(1), Step);
  OpBuilder LB(Ctx);
  LB.setInsertionPointToEnd(&forBody(For));
  Value *Inner = makeMathUnary(LB, OpCode::MathExp, Body.argument(2));
  makeAddF(LB, Outer, Inner);
  makeYield(LB, {});
  makeReturn(B);

  EXPECT_TRUE(runPass(createCSEPass(), Func.get(), Ctx));
  EXPECT_EQ(countOps(Func.get(), OpCode::MathExp), 1u);
}

//===----------------------------------------------------------------------===//
// DCE
//===----------------------------------------------------------------------===//

TEST(DCE, RemovesDeadChains) {
  Context Ctx;
  auto Func = makeFunction(Ctx, "f", {Ctx.f64()});
  Block &Body = funcBody(Func.get());
  OpBuilder B(Ctx);
  B.setInsertionPointToEnd(&Body);
  Value *A = makeAddF(B, Body.argument(0), makeConstantF(B, 1.0));
  makeMulF(B, A, A); // dead
  makeReturn(B);

  EXPECT_TRUE(runPass(createDCEPass(), Func.get(), Ctx));
  EXPECT_EQ(countAllOps(Func.get()), 1u); // only func.return
}

TEST(DCE, KeepsSideEffectingOps) {
  Context Ctx;
  auto Func = makeFunction(Ctx, "f", {Ctx.memref(), Ctx.i64(), Ctx.f64()});
  Block &Body = funcBody(Func.get());
  OpBuilder B(Ctx);
  B.setInsertionPointToEnd(&Body);
  makeMemStore(B, Body.argument(2), Body.argument(0), Body.argument(1));
  makeReturn(B);

  EXPECT_FALSE(runPass(createDCEPass(), Func.get(), Ctx));
  EXPECT_EQ(countOps(Func.get(), OpCode::MemStore), 1u);
}

TEST(DCE, RemovesUnusedLoads) {
  Context Ctx;
  auto Func = makeFunction(Ctx, "f", {Ctx.memref(), Ctx.i64()});
  Block &Body = funcBody(Func.get());
  OpBuilder B(Ctx);
  B.setInsertionPointToEnd(&Body);
  makeMemLoad(B, Body.argument(0), Body.argument(1));
  makeReturn(B);

  EXPECT_TRUE(runPass(createDCEPass(), Func.get(), Ctx));
  EXPECT_EQ(countOps(Func.get(), OpCode::MemLoad), 0u);
}

//===----------------------------------------------------------------------===//
// LICM
//===----------------------------------------------------------------------===//

TEST(LICM, HoistsInvariantArithmetic) {
  Context Ctx;
  auto Func = makeFunction(Ctx, "f",
                           {Ctx.memref(), Ctx.i64(), Ctx.i64(), Ctx.f64()});
  Block &Body = funcBody(Func.get());
  OpBuilder B(Ctx);
  B.setInsertionPointToEnd(&Body);
  Value *Step = makeConstantI(B, 1);
  Operation *For = makeFor(B, Body.argument(1), Body.argument(2), Step);
  OpBuilder LB(Ctx);
  LB.setInsertionPointToEnd(&forBody(For));
  // exp(arg) is loop-invariant; store depends on the IV so it stays.
  Value *Inv = makeMathUnary(LB, OpCode::MathExp, Body.argument(3));
  makeMemStore(LB, Inv, Body.argument(0), forBody(For).argument(0));
  makeYield(LB, {});
  makeReturn(B);

  EXPECT_TRUE(runPass(createLICMPass(), Func.get(), Ctx));
  // The exp is now before the loop.
  bool SeenExpBeforeFor = false, SeenFor = false;
  for (Operation *Op : Body.ops()) {
    if (Op->opcode() == OpCode::MathExp && !SeenFor)
      SeenExpBeforeFor = true;
    if (Op->opcode() == OpCode::ScfFor)
      SeenFor = true;
  }
  EXPECT_TRUE(SeenExpBeforeFor);
}

TEST(LICM, HoistsParamLoadsButNotStateLoads) {
  // Mirrors the generated kernels: parameter loads hoist (their memref is
  // never written in the loop); state loads do not (the loop stores to the
  // state memref).
  Context Ctx;
  auto Func = makeFunction(
      Ctx, "f", {Ctx.memref(), Ctx.memref(), Ctx.i64(), Ctx.i64()});
  Block &Body = funcBody(Func.get());
  Value *StateRef = Body.argument(0);
  Value *ParamRef = Body.argument(1);
  OpBuilder B(Ctx);
  B.setInsertionPointToEnd(&Body);
  Value *Step = makeConstantI(B, 1);
  Operation *For = makeFor(B, Body.argument(2), Body.argument(3), Step);
  OpBuilder LB(Ctx);
  LB.setInsertionPointToEnd(&forBody(For));
  Value *Zero = makeConstantI(LB, 0);
  Value *P = makeMemLoad(LB, ParamRef, Zero);
  Value *S = makeMemLoad(LB, StateRef, forBody(For).argument(0));
  Value *Sum = makeAddF(LB, P, S);
  makeMemStore(LB, Sum, StateRef, forBody(For).argument(0));
  makeYield(LB, {});
  makeReturn(B);

  EXPECT_TRUE(runPass(createLICMPass(), Func.get(), Ctx));
  unsigned LoadsInLoop = 0;
  for (Operation *Op : forBody(For).ops())
    LoadsInLoop += Op->opcode() == OpCode::MemLoad;
  EXPECT_EQ(LoadsInLoop, 1u); // only the state load remains inside
}

TEST(LICM, DoesNotHoistIVDependentOps) {
  Context Ctx;
  auto Func = makeFunction(Ctx, "f", {Ctx.memref(), Ctx.i64(), Ctx.i64()});
  Block &Body = funcBody(Func.get());
  OpBuilder B(Ctx);
  B.setInsertionPointToEnd(&Body);
  Value *Step = makeConstantI(B, 1);
  Operation *For = makeFor(B, Body.argument(1), Body.argument(2), Step);
  OpBuilder LB(Ctx);
  LB.setInsertionPointToEnd(&forBody(For));
  Value *Iv = forBody(For).argument(0);
  Value *Double = makeAddI(LB, Iv, Iv);
  Value *L = makeMemLoad(LB, Body.argument(0), Double);
  makeMemStore(LB, L, Body.argument(0), Iv);
  makeYield(LB, {});
  makeReturn(B);

  runPass(createLICMPass(), Func.get(), Ctx);
  unsigned OpsInLoop = 0;
  for (Operation *Op : forBody(For).ops())
    (void)Op, ++OpsInLoop;
  EXPECT_EQ(OpsInLoop, 4u); // addi, load, store, yield all stay
}

//===----------------------------------------------------------------------===//
// IfToSelect
//===----------------------------------------------------------------------===//

TEST(IfToSelect, FlattensSpeculatableIf) {
  Context Ctx;
  auto Func = makeFunction(Ctx, "f", {Ctx.memref(), Ctx.i64(), Ctx.f64()});
  Block &Body = funcBody(Func.get());
  Value *X = Body.argument(2);
  OpBuilder B(Ctx);
  B.setInsertionPointToEnd(&Body);
  Value *Cond = makeCmpF(B, CmpPredicate::LT, X, makeConstantF(B, 0.0));
  Operation *If = makeIf(B, Cond, {Ctx.f64()});
  OpBuilder TB(Ctx), EB(Ctx);
  TB.setInsertionPointToEnd(&If->region(0).front());
  Value *Neg = makeNegF(TB, X);
  makeYield(TB, {Neg});
  EB.setInsertionPointToEnd(&If->region(1).front());
  makeYield(EB, {X});
  makeMemStore(B, If->result(0), Body.argument(0), Body.argument(1));
  makeReturn(B);

  EXPECT_TRUE(runPass(createIfToSelectPass(), Func.get(), Ctx));
  EXPECT_EQ(countOps(Func.get(), OpCode::ScfIf), 0u);
  EXPECT_EQ(countOps(Func.get(), OpCode::ArithSelect), 1u);
  EXPECT_EQ(countOps(Func.get(), OpCode::ArithNegF), 1u);
}

TEST(IfToSelect, HandlesNestedIfs) {
  Context Ctx;
  auto Func = makeFunction(Ctx, "f", {Ctx.memref(), Ctx.i64(), Ctx.f64()});
  Block &Body = funcBody(Func.get());
  Value *X = Body.argument(2);
  OpBuilder B(Ctx);
  B.setInsertionPointToEnd(&Body);
  Value *Cond = makeCmpF(B, CmpPredicate::LT, X, makeConstantF(B, 0.0));
  Operation *Outer = makeIf(B, Cond, {Ctx.f64()});
  OpBuilder TB(Ctx), EB(Ctx);
  TB.setInsertionPointToEnd(&Outer->region(0).front());
  Value *Cond2 = makeCmpF(TB, CmpPredicate::GT, X, makeConstantF(TB, -1.0));
  Operation *Inner = makeIf(TB, Cond2, {Ctx.f64()});
  OpBuilder ITB(Ctx), IEB(Ctx);
  ITB.setInsertionPointToEnd(&Inner->region(0).front());
  makeYield(ITB, {X});
  IEB.setInsertionPointToEnd(&Inner->region(1).front());
  makeYield(IEB, {makeNegF(IEB, X)});
  makeYield(TB, {Inner->result(0)});
  EB.setInsertionPointToEnd(&Outer->region(1).front());
  makeYield(EB, {X});
  makeMemStore(B, Outer->result(0), Body.argument(0), Body.argument(1));
  makeReturn(B);

  EXPECT_TRUE(runPass(createIfToSelectPass(), Func.get(), Ctx));
  EXPECT_EQ(countOps(Func.get(), OpCode::ScfIf), 0u);
  EXPECT_EQ(countOps(Func.get(), OpCode::ArithSelect), 2u);
}

TEST(IfToSelect, SkipsSideEffectingBodies) {
  Context Ctx;
  auto Func = makeFunction(Ctx, "f", {Ctx.memref(), Ctx.i64(), Ctx.f64()});
  Block &Body = funcBody(Func.get());
  OpBuilder B(Ctx);
  B.setInsertionPointToEnd(&Body);
  Value *Cond = makeCmpF(B, CmpPredicate::LT, Body.argument(2),
                         makeConstantF(B, 0.0));
  Operation *If = makeIf(B, Cond, {});
  OpBuilder TB(Ctx), EB(Ctx);
  TB.setInsertionPointToEnd(&If->region(0).front());
  makeMemStore(TB, Body.argument(2), Body.argument(0), Body.argument(1));
  makeYield(TB, {});
  EB.setInsertionPointToEnd(&If->region(1).front());
  makeYield(EB, {});
  makeReturn(B);

  EXPECT_FALSE(runPass(createIfToSelectPass(), Func.get(), Ctx));
  EXPECT_EQ(countOps(Func.get(), OpCode::ScfIf), 1u);
}

//===----------------------------------------------------------------------===//
// PassManager
//===----------------------------------------------------------------------===//

TEST(PassManager, RunsPipelineAndRecordsStats) {
  Context Ctx;
  auto Func = makeFunction(Ctx, "f", {Ctx.memref(), Ctx.i64()});
  Block &Body = funcBody(Func.get());
  OpBuilder B(Ctx);
  B.setInsertionPointToEnd(&Body);
  Value *Sum = makeAddF(B, makeConstantF(B, 1.0), makeConstantF(B, 2.0));
  makeMemStore(B, Sum, Body.argument(0), Body.argument(1));
  makeReturn(B);

  PassManager PM(Ctx);
  PassManager::addDefaultPipeline(PM);
  EXPECT_TRUE(PM.run(Func.get())) << PM.errorMessage();
  EXPECT_EQ(PM.statistics().Entries.size(), 6u);
  EXPECT_TRUE(verifyFunction(Func.get()));
}

TEST(FoldUtils, EvalFloatOpMatchesLibm) {
  EXPECT_DOUBLE_EQ(evalFloatOp(OpCode::ArithAddF, 2, 3), 5);
  EXPECT_DOUBLE_EQ(evalFloatOp(OpCode::MathExp, 1, 0), std::exp(1.0));
  EXPECT_DOUBLE_EQ(evalFloatOp(OpCode::MathPow, 2, 10), 1024);
  EXPECT_DOUBLE_EQ(evalFloatOp(OpCode::ArithMinF, 2, -3), -3);
}

TEST(FoldUtils, EvalCmp) {
  EXPECT_TRUE(evalCmp(CmpPredicate::LT, 1, 2));
  EXPECT_FALSE(evalCmp(CmpPredicate::GE, 1, 2));
  EXPECT_TRUE(evalCmp(CmpPredicate::NE, 1, 2));
  EXPECT_TRUE(evalCmp(CmpPredicate::EQ, 2, 2));
}

} // namespace
