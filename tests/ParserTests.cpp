//===- ParserTests.cpp - easyml/Parser unit tests ----------------------------===//

#include "easyml/Parser.h"

#include <gtest/gtest.h>

using namespace limpet;
using namespace limpet::easyml;

namespace {

ParsedModel parseOk(std::string_view Src) {
  DiagnosticEngine Diags;
  ParsedModel PM = parseModel("test", Src, Diags);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  return PM;
}

const Stmt *findAssign(const ParsedModel &PM, std::string_view Target) {
  for (const StmtPtr &S : PM.Statements)
    if (S->Kind == StmtKind::Assign && S->Target == Target)
      return S.get();
  return nullptr;
}

TEST(Parser, SimpleAssignment) {
  ParsedModel PM = parseOk("x = 1 + 2*3;");
  const Stmt *S = findAssign(PM, "x");
  ASSERT_NE(S, nullptr);
  EXPECT_EQ(printExpr(*S->Value), "(1 + (2 * 3))");
}

TEST(Parser, PrecedenceAndParens) {
  ParsedModel PM = parseOk("x = (1 + 2)*3 - 4/2;");
  EXPECT_EQ(printExpr(*findAssign(PM, "x")->Value),
            "(((1 + 2) * 3) - (4 / 2))");
}

TEST(Parser, UnaryMinusBinds) {
  ParsedModel PM = parseOk("x = -a*b;");
  EXPECT_EQ(printExpr(*findAssign(PM, "x")->Value), "(-(a) * b)");
}

TEST(Parser, TernaryRightAssociative) {
  ParsedModel PM = parseOk("x = a < 0 ? 1 : b > 0 ? 2 : 3;");
  EXPECT_EQ(printExpr(*findAssign(PM, "x")->Value),
            "((a < 0) ? 1 : ((b > 0) ? 2 : 3))");
}

TEST(Parser, LogicalOperators) {
  ParsedModel PM = parseOk("x = a < 1 && b > 2 || !c;");
  EXPECT_EQ(printExpr(*findAssign(PM, "x")->Value),
            "(((a < 1) && (b > 2)) || !(c))");
}

TEST(Parser, BuiltinCalls) {
  ParsedModel PM = parseOk("x = exp(-a) + pow(b, 2) + square(c);");
  EXPECT_EQ(printExpr(*findAssign(PM, "x")->Value),
            "((exp(-(a)) + pow(b, 2)) + square(c))");
}

TEST(Parser, AbsAliasesFabs) {
  ParsedModel PM = parseOk("x = abs(a);");
  EXPECT_EQ(printExpr(*findAssign(PM, "x")->Value), "fabs(a)");
}

TEST(Parser, RejectsUnknownFunction) {
  DiagnosticEngine Diags;
  parseModel("t", "x = frobnicate(a);", Diags);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(Parser, RejectsWrongArity) {
  DiagnosticEngine Diags;
  parseModel("t", "x = exp(a, b);", Diags);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(Parser, DeclarationAndMarkups) {
  ParsedModel PM = parseOk(
      "Vm; .external(); .nodal(); .lookup(-100, 100, 0.05);\n"
      "Iion; .external();\n");
  const VarMarkups *Vm = PM.findMarkups("Vm");
  ASSERT_NE(Vm, nullptr);
  EXPECT_TRUE(Vm->External);
  EXPECT_TRUE(Vm->Nodal);
  ASSERT_TRUE(Vm->HasLookup);
  EXPECT_DOUBLE_EQ(Vm->LookupLo, -100);
  EXPECT_DOUBLE_EQ(Vm->LookupHi, 100);
  EXPECT_DOUBLE_EQ(Vm->LookupStep, 0.05);
  const VarMarkups *Iion = PM.findMarkups("Iion");
  ASSERT_NE(Iion, nullptr);
  EXPECT_TRUE(Iion->External);
  EXPECT_FALSE(Iion->Nodal);
}

TEST(Parser, MethodMarkup) {
  ParsedModel PM = parseOk("u1; .method(rk2);");
  ASSERT_NE(PM.findMarkups("u1"), nullptr);
  EXPECT_EQ(PM.findMarkups("u1")->Method, "rk2");
}

TEST(Parser, MarkupChainedOnSameLine) {
  ParsedModel PM = parseOk("u1;.method(rk2);");
  EXPECT_EQ(PM.findMarkups("u1")->Method, "rk2");
}

TEST(Parser, GroupWithMarkup) {
  ParsedModel PM = parseOk("group{ u1; u2; u3; }.nodal();");
  for (const char *Name : {"u1", "u2", "u3"}) {
    const VarMarkups *M = PM.findMarkups(Name);
    ASSERT_NE(M, nullptr) << Name;
    EXPECT_TRUE(M->Nodal);
  }
}

TEST(Parser, ParamGroupWithInitializers) {
  ParsedModel PM = parseOk("group{ Cm = 200; beta = 1; }.param();");
  EXPECT_TRUE(PM.findMarkups("Cm")->Param);
  EXPECT_TRUE(PM.findMarkups("beta")->Param);
  ASSERT_NE(findAssign(PM, "Cm"), nullptr);
  EXPECT_EQ(printExpr(*findAssign(PM, "Cm")->Value), "200");
}

TEST(Parser, IfElseStatement) {
  ParsedModel PM = parseOk(
      "if (u < 0.5) { a = 1; } else { a = 2; }");
  ASSERT_EQ(PM.Statements.size(), 1u);
  const Stmt &S = *PM.Statements[0];
  EXPECT_EQ(S.Kind, StmtKind::If);
  EXPECT_EQ(printExpr(*S.Cond), "(u < 0.5)");
  ASSERT_EQ(S.Then.size(), 1u);
  ASSERT_EQ(S.Else.size(), 1u);
}

TEST(Parser, ElseIfChains) {
  ParsedModel PM = parseOk(
      "if (u < 0) { a = 1; } else if (u < 1) { a = 2; } else { a = 3; }");
  const Stmt &S = *PM.Statements[0];
  ASSERT_EQ(S.Else.size(), 1u);
  EXPECT_EQ(S.Else[0]->Kind, StmtKind::If);
}

TEST(Parser, NegativeMarkupArguments) {
  ParsedModel PM = parseOk("Vm; .lookup(-90, 50, 0.1);");
  EXPECT_DOUBLE_EQ(PM.findMarkups("Vm")->LookupLo, -90);
}

TEST(Parser, UnknownMarkupWarnsButParses) {
  DiagnosticEngine Diags;
  parseModel("t", "Vm; .fancy();", Diags);
  EXPECT_FALSE(Diags.hasErrors());
  ASSERT_EQ(Diags.diagnostics().size(), 1u);
  EXPECT_EQ(Diags.diagnostics()[0].Severity, DiagSeverity::Warning);
}

TEST(Parser, MarkupWithoutTargetIsAnError) {
  DiagnosticEngine Diags;
  parseModel("t", ".external();", Diags);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(Parser, LookupArityError) {
  DiagnosticEngine Diags;
  parseModel("t", "Vm; .lookup(1, 2);", Diags);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(Parser, RecoversAfterBadStatement) {
  DiagnosticEngine Diags;
  ParsedModel PM = parseModel("t", "x = ;\ny = 2;", Diags);
  EXPECT_TRUE(Diags.hasErrors());
  // The second statement still parses.
  bool FoundY = false;
  for (const StmtPtr &S : PM.Statements)
    FoundY |= S->Kind == StmtKind::Assign && S->Target == "y";
  EXPECT_TRUE(FoundY);
}

TEST(Parser, SurvivesMalformedInputsWithoutCrashing) {
  // Robustness sweep: every prefix and a set of mutations of a valid
  // model must either parse or produce diagnostics — never crash.
  const std::string Valid =
      "Vm; .external(); .lookup(-100, 100, 0.05);\nIion; .external();\n"
      "group{ g = 0.5; }.param();\n"
      "if (Vm < 0.0) { r = 1.0; } else { r = exp(Vm); }\n"
      "diff_w = r*(1.0-w) - 0.2*w;\nw_init = 0.1;\nIion = g*w;\n";
  for (size_t Len = 0; Len <= Valid.size(); Len += 3) {
    DiagnosticEngine Diags;
    parseModel("prefix", Valid.substr(0, Len), Diags);
  }
  const char *Mutations[] = {
      "group{ group{ a; } }.param();",
      "x = ((((1);",
      "x = 1 ? ;",
      "if (1) { } else",
      ".lookup();",
      "x = pow(1,2,3);",
      "x = -;",
      "}} {{ ;;; ...",
      "x = 1e;",
      "group{",
  };
  for (const char *Bad : Mutations) {
    DiagnosticEngine Diags;
    parseModel("mut", Bad, Diags);
    // Must report rather than accept silently (except harmless cases).
    SUCCEED();
  }
}

TEST(Parser, DeclOrderTracksFirstMention) {
  ParsedModel PM = parseOk("b = 1;\na = 2;\nb2 = a;");
  ASSERT_GE(PM.DeclOrder.size(), 3u);
  EXPECT_EQ(PM.DeclOrder[0], "b");
  EXPECT_EQ(PM.DeclOrder[1], "a");
  EXPECT_EQ(PM.DeclOrder[2], "b2");
}

} // namespace
