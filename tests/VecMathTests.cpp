//===- VecMathTests.cpp - runtime/VecMath accuracy tests -----------------------===//
//
// Validates the SVML-analogue math kernels against libm over the ranges
// ionic models exercise. Parameterized sweeps act as property tests.
//
//===----------------------------------------------------------------------===//

#include "runtime/VecMath.h"

#include <cmath>
#include <gtest/gtest.h>

using namespace limpet::vecmath;

namespace {

double relError(double Got, double Want) {
  if (Want == 0.0)
    return std::fabs(Got);
  return std::fabs(Got - Want) / std::fabs(Want);
}

class VecMathSweep : public ::testing::TestWithParam<double> {};

TEST_P(VecMathSweep, ExpMatchesLibm) {
  double X = GetParam();
  EXPECT_LE(relError(fastExp(X), std::exp(X)), 5e-13) << X;
}

TEST_P(VecMathSweep, Expm1MatchesLibm) {
  double X = GetParam();
  EXPECT_LE(relError(fastExpm1(X), std::expm1(X)), 1e-11) << X;
}

TEST_P(VecMathSweep, TanhMatchesLibm) {
  double X = GetParam();
  EXPECT_LE(relError(fastTanh(X), std::tanh(X)), 1e-11) << X;
}

TEST_P(VecMathSweep, SinCosMatchLibm) {
  double X = GetParam();
  EXPECT_NEAR(fastSin(X), std::sin(X), 1e-11) << X;
  EXPECT_NEAR(fastCos(X), std::cos(X), 1e-11) << X;
}

TEST_P(VecMathSweep, AtanMatchesLibm) {
  double X = GetParam();
  EXPECT_LE(relError(fastAtan(X), std::atan(X)), 1e-11) << X;
}

TEST_P(VecMathSweep, SinhCoshMatchLibm) {
  double X = GetParam();
  if (std::fabs(X) > 700)
    return;
  EXPECT_LE(relError(fastSinh(X), std::sinh(X)), 1e-11) << X;
  EXPECT_LE(relError(fastCosh(X), std::cosh(X)), 1e-11) << X;
}

INSTANTIATE_TEST_SUITE_P(
    ModelRange, VecMathSweep,
    ::testing::Values(-709.0, -150.0, -88.7, -21.3, -5.0, -1.0, -0.3,
                      -1e-5, 0.0, 1e-5, 0.1, 0.5, 1.0, 3.7, 20.0, 88.7,
                      250.0, 709.0));

class VecMathPositiveSweep : public ::testing::TestWithParam<double> {};

TEST_P(VecMathPositiveSweep, LogMatchesLibm) {
  double X = GetParam();
  EXPECT_LE(relError(fastLog(X), std::log(X)), 5e-13) << X;
  EXPECT_LE(relError(fastLog10(X), std::log10(X)), 1e-12) << X;
}

TEST_P(VecMathPositiveSweep, PowMatchesLibm) {
  double X = GetParam();
  for (double Y : {-2.5, -1.0, 0.3, 1.0, 2.0, 7.7}) {
    double Want = std::pow(X, Y);
    if (!std::isfinite(Want)) {
      EXPECT_EQ(fastPow(X, Y), Want) << X << "^" << Y;
      continue;
    }
    EXPECT_LE(relError(fastPow(X, Y), Want), 1e-11) << X << "^" << Y;
  }
}

TEST_P(VecMathPositiveSweep, SqrtChainConsistent) {
  double X = GetParam();
  EXPECT_LE(relError(fastExp(fastLog(X)), X), 1e-11) << X;
}

INSTANTIATE_TEST_SUITE_P(ModelRange, VecMathPositiveSweep,
                         ::testing::Values(1e-300, 1e-12, 1e-4, 0.07, 0.5,
                                           1.0, 2.718281828, 42.0, 1e4,
                                           1e12, 1e300));

TEST(VecMath, ExpSpecialValues) {
  EXPECT_EQ(fastExp(-800.0), 0.0);
  EXPECT_TRUE(std::isinf(fastExp(800.0)));
  EXPECT_EQ(fastExp(0.0), 1.0);
}

TEST(VecMath, LogSpecialValues) {
  EXPECT_TRUE(std::isinf(fastLog(0.0)));
  EXPECT_LT(fastLog(0.0), 0);
  EXPECT_TRUE(std::isnan(fastLog(-1.0)));
  EXPECT_EQ(fastLog(1.0), 0.0);
}

TEST(VecMath, PowSpecialValues) {
  EXPECT_EQ(fastPow(5.0, 0.0), 1.0);
  EXPECT_EQ(fastPow(0.0, 2.0), 0.0);
  EXPECT_EQ(fastPow(1.0, 100.0), 1.0);
}

TEST(VecMath, TanhSaturates) {
  EXPECT_DOUBLE_EQ(fastTanh(100.0), 1.0);
  EXPECT_DOUBLE_EQ(fastTanh(-100.0), -1.0);
}

TEST(VecMath, AsinAcosEndpoints) {
  EXPECT_NEAR(fastAsin(1.0), M_PI / 2, 1e-12);
  EXPECT_NEAR(fastAsin(-1.0), -M_PI / 2, 1e-12);
  EXPECT_NEAR(fastAcos(1.0), 0.0, 1e-12);
  EXPECT_NEAR(fastAcos(-1.0), M_PI, 1e-12);
  for (double X = -0.99; X <= 0.99; X += 0.07) {
    EXPECT_LE(relError(fastAsin(X), std::asin(X)), 1e-10) << X;
    EXPECT_NEAR(fastAcos(X), std::acos(X), 1e-10) << X;
  }
}

TEST(VecMath, TanMatchesAwayFromPoles) {
  for (double X = -1.4; X <= 1.4; X += 0.05)
    EXPECT_LE(relError(fastTan(X), std::tan(X)), 1e-10) << X;
}

TEST(VecMath, DenseExpLogSweepProperty) {
  // Dense property sweep over the voltage-like range.
  for (double X = -120; X <= 120; X += 0.37)
    ASSERT_LE(relError(fastExp(X), std::exp(X)), 5e-13) << X;
  for (double X = 1e-6; X < 1e6; X *= 1.7)
    ASSERT_LE(relError(fastLog(X), std::log(X)), 5e-13) << X;
}

TEST(VecMath, FlopCostsArePositive) {
  EXPECT_GT(FlopCost::Exp, 0);
  EXPECT_GT(FlopCost::Log, 0);
  EXPECT_GT(FlopCost::Pow, FlopCost::Exp);
}

} // namespace
