//===- DaemonTests.cpp - limpetd building-block unit tests ----------------===//
//
// The daemon's pieces in isolation: the NDJSON value type, the SPSC
// event ring, admission control / shedding / fair-share dispatch in the
// JobQueue, the durable job journal, and JobSpec (de)serialization.
// The end-to-end daemon (socket, runners, crash replay) is covered by
// scripts/daemon_smoke.sh and the faultinject daemon-* scenarios.
//
//===----------------------------------------------------------------------===//

#include "daemon/JobQueue.h"
#include "daemon/JobRunner.h"
#include "daemon/Journal.h"
#include "daemon/Json.h"
#include "daemon/Protocol.h"
#include "daemon/SpscRing.h"
#include "sim/Checkpoint.h"

#include <filesystem>
#include <fstream>
#include <gtest/gtest.h>
#include <thread>
#include <unistd.h>

using namespace limpet;
using namespace limpet::daemon;

namespace {

/// A unique, empty temp directory per test.
std::string freshDir(const char *Tag) {
  std::string Dir = ::testing::TempDir() + "limpet-daemon-" + Tag + "-" +
                    std::to_string(::getpid());
  std::filesystem::remove_all(Dir);
  std::filesystem::create_directories(Dir);
  return Dir;
}

//===----------------------------------------------------------------------===//
// Json
//===----------------------------------------------------------------------===//

TEST(DaemonJson, RendersCompactSingleLine) {
  JsonValue J = JsonValue::object();
  J.set("verb", JsonValue::string("submit"));
  J.set("steps", JsonValue::number(int64_t(2000)));
  J.set("dt", JsonValue::number(0.01));
  J.set("guard", JsonValue::boolean(false));
  J.set("note", JsonValue::string("line1\nline2\ttab"));
  std::string S = J.str();
  // NDJSON framing: control characters are escaped, never raw.
  EXPECT_EQ(S.find('\n'), std::string::npos);
  EXPECT_EQ(S.find('\t'), std::string::npos);
  EXPECT_NE(S.find("\\n"), std::string::npos);
  EXPECT_NE(S.find("\"steps\":2000"), std::string::npos);
  EXPECT_NE(S.find("\"guard\":false"), std::string::npos);
}

TEST(DaemonJson, ParseRoundTripsRenderedValues) {
  JsonValue J = JsonValue::object();
  J.set("model", JsonValue::string("O'Hara \"quoted\" \\ slash"));
  J.set("cells", JsonValue::number(int64_t(1 << 20)));
  J.set("dt", JsonValue::number(0.005));
  J.set("nil", JsonValue::null());
  JsonValue Arr = JsonValue::array();
  Arr.push(JsonValue::number(int64_t(1)));
  Arr.push(JsonValue::boolean(true));
  Arr.push(JsonValue::string(""));
  J.set("mixed", std::move(Arr));

  Expected<JsonValue> P = JsonValue::parse(J.str());
  ASSERT_TRUE(bool(P)) << P.status().message();
  EXPECT_EQ(P->str(), J.str());
  EXPECT_EQ(P->stringOr("model", ""), "O'Hara \"quoted\" \\ slash");
  EXPECT_EQ(P->intOr("cells", 0), 1 << 20);
  EXPECT_DOUBLE_EQ(P->numberOr("dt", 0), 0.005);
  ASSERT_NE(P->find("nil"), nullptr);
  EXPECT_TRUE(P->find("nil")->isNull());
  ASSERT_NE(P->find("mixed"), nullptr);
  EXPECT_EQ(P->find("mixed")->items().size(), 3u);
}

TEST(DaemonJson, TypedAccessorsDefaultOnAbsentOrWrongType) {
  Expected<JsonValue> P = JsonValue::parse("{\"a\":\"text\",\"b\":3}");
  ASSERT_TRUE(bool(P));
  EXPECT_EQ(P->intOr("a", 7), 7);        // wrong type
  EXPECT_EQ(P->intOr("missing", 9), 9);  // absent
  EXPECT_EQ(P->stringOr("b", "d"), "d"); // wrong type
  EXPECT_EQ(P->intOr("b", 0), 3);
}

TEST(DaemonJson, MalformedInputIsARecoverableError) {
  // Client bytes are hostile: none of these may crash or parse.
  for (const char *Bad :
       {"", "{", "{\"a\":}", "[1,]", "{\"a\":1}trailing", "\"unterminated",
        "{\"a\" 1}", "nul", "[1,2", "{\"\\u12\":1}"}) {
    Expected<JsonValue> P = JsonValue::parse(Bad);
    EXPECT_FALSE(bool(P)) << "accepted: " << Bad;
  }
  // Deeply nested input hits the depth limit, not the stack.
  std::string Deep(100000, '[');
  EXPECT_FALSE(bool(JsonValue::parse(Deep)));
}

//===----------------------------------------------------------------------===//
// SpscRing
//===----------------------------------------------------------------------===//

TEST(DaemonSpscRing, PushPopFifoAndFullDrops) {
  SpscRing<int> R(4); // rounds to capacity 4
  EXPECT_EQ(R.capacity(), 4u);
  for (int I = 0; I != 4; ++I)
    EXPECT_TRUE(R.tryPush(I));
  EXPECT_FALSE(R.tryPush(99)); // full: dropped, counted, not blocking
  EXPECT_EQ(R.dropped(), 1u);
  int V = -1;
  for (int I = 0; I != 4; ++I) {
    ASSERT_TRUE(R.tryPop(V));
    EXPECT_EQ(V, I);
  }
  EXPECT_FALSE(R.tryPop(V)); // empty
  EXPECT_TRUE(R.tryPush(5)); // space reclaimed
}

TEST(DaemonSpscRing, CloseTurnsPushesIntoCountedDrops) {
  SpscRing<std::string> R(8);
  EXPECT_TRUE(R.tryPush("before"));
  R.close();
  EXPECT_TRUE(R.closed());
  EXPECT_FALSE(R.tryPush("after"));
  EXPECT_FALSE(R.tryPush("after2"));
  EXPECT_EQ(R.dropped(), 2u);
  // Already-buffered events stay poppable after close.
  std::string V;
  EXPECT_TRUE(R.tryPop(V));
  EXPECT_EQ(V, "before");
}

TEST(DaemonSpscRing, ConcurrentProducerConsumerKeepsStrictFifo) {
  SpscRing<uint64_t> R(64);
  constexpr uint64_t N = 50000;
  std::thread Producer([&] {
    for (uint64_t I = 0; I != N; ++I)
      while (!R.tryPush(I)) // paced producer: retry instead of dropping
        std::this_thread::yield();
  });
  uint64_t Expect = 0, V = 0;
  while (Expect != N) {
    if (R.tryPop(V)) {
      ASSERT_EQ(V, Expect); // strict FIFO across threads, nothing lost
      ++Expect;
    }
  }
  Producer.join();
  EXPECT_FALSE(R.tryPop(V));
}

//===----------------------------------------------------------------------===//
// JobQueue
//===----------------------------------------------------------------------===//

JobPtr mkJob(uint64_t Id, const char *Tenant = "default", int Priority = 0) {
  auto J = std::make_shared<Job>();
  J->Spec.Id = Id;
  J->Spec.Tenant = Tenant;
  J->Spec.Priority = Priority;
  J->Spec.Model = "HodgkinHuxley";
  return J;
}

TEST(DaemonJobQueue, RejectsBeyondBoundedDepthWithReason) {
  JobQueue::Limits Lim;
  Lim.MaxQueued = 2;
  Lim.PerTenantRunning = 2;
  Lim.PerTenantInFlight = 8;
  JobQueue Q(Lim);
  EXPECT_TRUE(Q.submit(mkJob(1, "a")).Accepted);
  EXPECT_TRUE(Q.submit(mkJob(2, "b")).Accepted);
  JobQueue::Admission A = Q.submit(mkJob(3, "c"));
  EXPECT_FALSE(A.Accepted);
  EXPECT_EQ(A.Reason, "queue-full");
  EXPECT_EQ(Q.queuedCount(), 2u);
  EXPECT_EQ(Q.find(3), nullptr); // rejected jobs never enter the table
}

TEST(DaemonJobQueue, PerTenantInFlightCapFiresBeforeQueueDepth) {
  JobQueue::Limits Lim;
  Lim.MaxQueued = 8;
  Lim.PerTenantInFlight = 2;
  JobQueue Q(Lim);
  EXPECT_TRUE(Q.submit(mkJob(1, "a")).Accepted);
  EXPECT_TRUE(Q.submit(mkJob(2, "a")).Accepted);
  JobQueue::Admission A = Q.submit(mkJob(3, "a", /*Priority=*/5));
  EXPECT_FALSE(A.Accepted);
  EXPECT_EQ(A.Reason, "tenant-cap"); // even at high priority
  EXPECT_TRUE(Q.submit(mkJob(4, "b")).Accepted);
}

TEST(DaemonJobQueue, HigherPrioritySubmitShedsYoungestLowestPriority) {
  JobQueue::Limits Lim;
  Lim.MaxQueued = 3;
  JobQueue Q(Lim);
  EXPECT_TRUE(Q.submit(mkJob(1, "a", 1)).Accepted);
  EXPECT_TRUE(Q.submit(mkJob(2, "a", 0)).Accepted);
  EXPECT_TRUE(Q.submit(mkJob(3, "b", 0)).Accepted); // youngest at prio 0

  // Priority equal to the would-be victim's never evicts.
  JobQueue::Admission A = Q.submit(mkJob(4, "b", 0));
  EXPECT_FALSE(A.Accepted);
  EXPECT_EQ(A.Reason, "queue-full");
  EXPECT_EQ(Q.shedCount(), 0u);

  // Strictly higher priority evicts the youngest lowest-priority job.
  A = Q.submit(mkJob(5, "b", 2));
  ASSERT_TRUE(A.Accepted);
  ASSERT_NE(A.Shed, nullptr);
  EXPECT_EQ(A.Shed->Spec.Id, 3u);
  EXPECT_EQ(A.Shed->State.load(), JobState::Shed);
  EXPECT_EQ(Q.shedCount(), 1u);
  EXPECT_EQ(Q.queuedCount(), 3u);
  // The shed job stays findable (terminal) for status queries.
  ASSERT_NE(Q.find(3), nullptr);
  EXPECT_EQ(Q.find(3)->State.load(), JobState::Shed);
}

TEST(DaemonJobQueue, FairShareDispatchAcrossTenants) {
  JobQueue::Limits Lim;
  Lim.MaxQueued = 8;
  Lim.PerTenantRunning = 2;
  JobQueue Q(Lim);
  // Tenant a bursts four jobs before tenant b submits one.
  for (uint64_t I = 1; I <= 4; ++I)
    EXPECT_TRUE(Q.submit(mkJob(I, "a")).Accepted);
  EXPECT_TRUE(Q.submit(mkJob(5, "b")).Accepted);

  // First pop is a's FIFO head; second prefers b (fewer running).
  JobPtr P1 = Q.pop();
  ASSERT_TRUE(P1);
  EXPECT_EQ(P1->Spec.Id, 1u);
  JobPtr P2 = Q.pop();
  ASSERT_TRUE(P2);
  EXPECT_EQ(P2->Spec.Tenant, "b");
  EXPECT_EQ(P2->State.load(), JobState::Running);

  // a can run one more (cap 2)...
  JobPtr P3 = Q.pop();
  ASSERT_TRUE(P3);
  EXPECT_EQ(P3->Spec.Id, 2u);
  EXPECT_EQ(Q.runningCount(), 3u);

  // ...then a is capped; a freed slot unblocks the next a job.
  Q.finished(P1);
  JobPtr P4 = Q.pop();
  ASSERT_TRUE(P4);
  EXPECT_EQ(P4->Spec.Id, 3u);
}

TEST(DaemonJobQueue, PriorityBeatsFifoWithinATenant) {
  JobQueue Q;
  EXPECT_TRUE(Q.submit(mkJob(1, "a", 0)).Accepted);
  EXPECT_TRUE(Q.submit(mkJob(2, "a", 3)).Accepted);
  EXPECT_TRUE(Q.submit(mkJob(3, "a", 3)).Accepted);
  JobPtr P = Q.pop();
  ASSERT_TRUE(P);
  EXPECT_EQ(P->Spec.Id, 2u); // highest priority, oldest among ties
}

TEST(DaemonJobQueue, CancelRemovesQueuedOnly) {
  JobQueue Q;
  EXPECT_TRUE(Q.submit(mkJob(1)).Accepted);
  EXPECT_TRUE(Q.submit(mkJob(2)).Accepted);
  JobPtr Running = Q.pop();
  ASSERT_TRUE(Running);
  EXPECT_EQ(Q.removeQueued(Running->Spec.Id), nullptr); // running: no
  JobPtr Removed = Q.removeQueued(2);
  ASSERT_TRUE(Removed);
  EXPECT_EQ(Removed->Spec.Id, 2u);
  EXPECT_EQ(Q.removeQueued(2), nullptr); // already gone
  EXPECT_EQ(Q.removeQueued(99), nullptr);
  EXPECT_EQ(Q.queuedCount(), 0u);
}

TEST(DaemonJobQueue, ShutdownDrainsBlockedPops) {
  JobQueue Q;
  std::thread Waiter([&] { EXPECT_EQ(Q.pop(), nullptr); });
  Q.shutdown();
  Waiter.join();
  JobQueue::Admission A = Q.submit(mkJob(1));
  EXPECT_FALSE(A.Accepted);
  EXPECT_EQ(A.Reason, "shutting-down");
}

//===----------------------------------------------------------------------===//
// Journal
//===----------------------------------------------------------------------===//

TEST(DaemonJournal, AppendReadAllRoundTrips) {
  std::string Dir = freshDir("journal-rt");
  std::string Path = Dir + "/journal.lj";
  {
    Journal J(Path);
    ASSERT_TRUE(J.open().isOk());
    ASSERT_TRUE(J.append(Journal::Kind::Accepted, 1, "{\"id\":1}").isOk());
    ASSERT_TRUE(J.append(Journal::Kind::Started, 1).isOk());
    ASSERT_TRUE(J.append(Journal::Kind::Accepted, 2, "{\"id\":2}").isOk());
    ASSERT_TRUE(J.append(Journal::Kind::Cancelled, 2).isOk());
  }
  bool Truncated = true;
  Expected<std::vector<Journal::Record>> R = Journal::readAll(Path, &Truncated);
  ASSERT_TRUE(bool(R)) << R.status().message();
  ASSERT_EQ(R->size(), 4u);
  EXPECT_FALSE(Truncated);
  EXPECT_EQ((*R)[0].K, Journal::Kind::Accepted);
  EXPECT_EQ((*R)[0].JobId, 1u);
  EXPECT_EQ((*R)[0].Payload, "{\"id\":1}");
  EXPECT_EQ((*R)[3].K, Journal::Kind::Cancelled);

  // Job 1 was accepted and started but never reached a terminal record;
  // job 2 was cancelled. Exactly job 1 replays.
  std::vector<Journal::Record> Live = Journal::unfinished(*R);
  ASSERT_EQ(Live.size(), 1u);
  EXPECT_EQ(Live[0].JobId, 1u);
  std::filesystem::remove_all(Dir);
}

TEST(DaemonJournal, TruncatedTailLosesOnlyTheTornRecord) {
  std::string Dir = freshDir("journal-trunc");
  std::string Path = Dir + "/journal.lj";
  {
    Journal J(Path);
    ASSERT_TRUE(J.open().isOk());
    for (uint64_t Id = 1; Id <= 3; ++Id)
      ASSERT_TRUE(J.append(Journal::Kind::Accepted, Id, "{}").isOk());
  }
  uintmax_t Full = std::filesystem::file_size(Path);
  // Chop the file at every prefix length: the reader must always return
  // an intact prefix of whole records and never error or misparse.
  std::string Bytes;
  {
    std::ifstream In(Path, std::ios::binary);
    Bytes.assign(std::istreambuf_iterator<char>(In), {});
  }
  ASSERT_EQ(Bytes.size(), Full);
  size_t RecordSize = Bytes.size() / 3;
  for (size_t Len : {Bytes.size() - 1, 2 * RecordSize + 5, RecordSize, size_t(3),
                     size_t(0)}) {
    std::ofstream(Path, std::ios::binary | std::ios::trunc)
        .write(Bytes.data(), std::streamsize(Len));
    bool Truncated = false;
    Expected<std::vector<Journal::Record>> R =
        Journal::readAll(Path, &Truncated);
    ASSERT_TRUE(bool(R)) << "len=" << Len;
    EXPECT_EQ(R->size(), Len / RecordSize) << "len=" << Len;
    EXPECT_EQ(Truncated, Len % RecordSize != 0) << "len=" << Len;
  }
  std::filesystem::remove_all(Dir);
}

TEST(DaemonJournal, CompactRewritesExactlyTheLiveSet) {
  std::string Dir = freshDir("journal-compact");
  std::string Path = Dir + "/journal.lj";
  {
    Journal J(Path);
    ASSERT_TRUE(J.open().isOk());
    for (uint64_t Id = 1; Id <= 5; ++Id)
      ASSERT_TRUE(J.append(Journal::Kind::Accepted, Id, "{}").isOk());
    for (uint64_t Id : {1, 3, 5})
      ASSERT_TRUE(J.append(Journal::Kind::Finished, Id).isOk());
  }
  Expected<std::vector<Journal::Record>> R = Journal::readAll(Path);
  ASSERT_TRUE(bool(R));
  std::vector<Journal::Record> Live = Journal::unfinished(*R);
  ASSERT_EQ(Live.size(), 2u);
  ASSERT_TRUE(Journal::compact(Path, Live).isOk());

  R = Journal::readAll(Path);
  ASSERT_TRUE(bool(R));
  ASSERT_EQ(R->size(), 2u);
  EXPECT_EQ((*R)[0].JobId, 2u);
  EXPECT_EQ((*R)[1].JobId, 4u);
  // A compacted journal accepts further appends.
  {
    Journal J(Path);
    ASSERT_TRUE(J.open().isOk());
    ASSERT_TRUE(J.append(Journal::Kind::Finished, 2).isOk());
  }
  R = Journal::readAll(Path);
  ASSERT_TRUE(bool(R));
  EXPECT_EQ(R->size(), 3u);
  EXPECT_EQ(Journal::unfinished(*R).size(), 1u);
  std::filesystem::remove_all(Dir);
}

TEST(DaemonJournal, MissingFileIsAnEmptyJournal) {
  bool Truncated = true;
  Expected<std::vector<Journal::Record>> R =
      Journal::readAll(::testing::TempDir() + "limpet-daemon-nope/absent.lj",
                       &Truncated);
  ASSERT_TRUE(bool(R));
  EXPECT_TRUE(R->empty());
  EXPECT_FALSE(Truncated);
}

//===----------------------------------------------------------------------===//
// JobSpec
//===----------------------------------------------------------------------===//

TEST(DaemonJobSpec, JsonRoundTripPreservesEveryField) {
  Expected<JsonValue> Body = JsonValue::parse(
      "{\"model\":\"OHaraRudy\",\"tenant\":\"lab7\",\"priority\":2,"
      "\"cells\":512,\"steps\":4000,\"dt\":0.005,\"guard\":false,"
      "\"timeout_sec\":1.5,\"checkpoint_every\":200,\"progress_every\":50,"
      "\"config\":{\"preset\":\"limpetmlir\",\"width\":8,\"layout\":\"aosoa\"}}");
  ASSERT_TRUE(bool(Body));
  Expected<JobSpec> Spec = parseJobSpec(*Body);
  ASSERT_TRUE(bool(Spec)) << Spec.status().message();
  (*Spec).Id = 42;
  EXPECT_EQ(Spec->Model, "OHaraRudy");
  EXPECT_EQ(Spec->Tenant, "lab7");
  EXPECT_EQ(Spec->Priority, 2);
  EXPECT_EQ(Spec->NumCells, 512);
  EXPECT_EQ(Spec->NumSteps, 4000);
  EXPECT_DOUBLE_EQ(Spec->Dt, 0.005);
  EXPECT_FALSE(Spec->Guard);
  EXPECT_DOUBLE_EQ(Spec->TimeoutSec, 1.5);
  EXPECT_EQ(Spec->CheckpointEveryN, 200);
  EXPECT_EQ(Spec->ProgressEvery, 50);
  EXPECT_EQ(Spec->Config.Width, 8u);

  // journal payload -> parse -> identical spec (the recovery path).
  Expected<JobSpec> Back = parseJobSpec(jobSpecToJson(*Spec));
  ASSERT_TRUE(bool(Back)) << Back.status().message();
  EXPECT_EQ(Back->Id, 42u);
  EXPECT_EQ(jobSpecToJson(*Back).str(), jobSpecToJson(*Spec).str());
}

TEST(DaemonJobSpec, StructurallyInvalidSpecsAreRecoverableErrors) {
  const char *Bad[] = {
      "{}",                                        // missing model
      "{\"model\":\"HH\",\"cells\":0}",            // non-positive cells
      "{\"model\":\"HH\",\"steps\":-5}",           // non-positive steps
      "{\"model\":\"HH\",\"dt\":0}",               // non-positive dt
      "{\"model\":\"HH\",\"timeout_sec\":-1}",     // negative deadline
      "{\"model\":\"HH\",\"tenant\":\"\"}",        // empty tenant
      "{\"model\":\"HH\",\"config\":{\"preset\":\"turbo\"}}", // bad preset
      "{\"model\":\"HH\",\"config\":{\"layout\":\"csr\"}}",   // bad layout
      "[1,2,3]",                                   // not an object
  };
  for (const char *Text : Bad) {
    Expected<JsonValue> Body = JsonValue::parse(Text);
    ASSERT_TRUE(bool(Body)) << Text;
    EXPECT_FALSE(bool(parseJobSpec(*Body))) << "accepted: " << Text;
  }
  // Defaults apply when optional fields are omitted.
  Expected<JsonValue> Min = JsonValue::parse("{\"model\":\"HH\"}");
  ASSERT_TRUE(bool(Min));
  Expected<JobSpec> Spec = parseJobSpec(*Min);
  ASSERT_TRUE(bool(Spec));
  EXPECT_EQ(Spec->Tenant, "default");
  EXPECT_EQ(Spec->NumCells, 256);
  EXPECT_EQ(Spec->NumSteps, 1000);
  EXPECT_TRUE(Spec->Guard);
}

TEST(DaemonJobSpec, EnsembleSweepRoundTripsAndValidatesAtAdmission) {
  Expected<JsonValue> Body = JsonValue::parse(
      "{\"model\":\"HodgkinHuxley\",\"steps\":200,"
      "\"ensemble_sweep\":\"gK=20:40:5;gNa=90,120\","
      "\"ensemble_cells_per\":2}");
  ASSERT_TRUE(bool(Body));
  Expected<JobSpec> Spec = parseJobSpec(*Body);
  ASSERT_TRUE(bool(Spec)) << Spec.status().message();
  EXPECT_EQ(Spec->EnsembleSweep, "gK=20:40:5;gNa=90,120");
  EXPECT_EQ(Spec->EnsembleCellsPer, 2);

  // Journal payload -> parse -> identical spec (the replay path).
  Expected<JobSpec> Back = parseJobSpec(jobSpecToJson(*Spec));
  ASSERT_TRUE(bool(Back)) << Back.status().message();
  EXPECT_EQ(Back->EnsembleSweep, Spec->EnsembleSweep);
  EXPECT_EQ(Back->EnsembleCellsPer, 2);
  EXPECT_EQ(jobSpecToJson(*Back).str(), jobSpecToJson(*Spec).str());

  // Malformed grammar, bad member width, and tissue+ensemble are all
  // rejected at admission, not when the job runs.
  const char *Bad[] = {
      "{\"model\":\"HH\",\"ensemble_sweep\":\"gK=\"}",
      "{\"model\":\"HH\",\"ensemble_sweep\":\"gK=1:2\"}",
      "{\"model\":\"HH\",\"ensemble_sweep\":\"gK=1:2:0\"}",
      "{\"model\":\"HH\",\"ensemble_sweep\":\"gK=1,2;gK=3\"}",
      "{\"model\":\"HH\",\"ensemble_sweep\":\"gK=1,2\","
      "\"ensemble_cells_per\":0}",
      "{\"model\":\"HH\",\"ensemble_sweep\":\"gK=1,2\",\"tissue_nx\":8}",
  };
  for (const char *Text : Bad) {
    Expected<JsonValue> B = JsonValue::parse(Text);
    ASSERT_TRUE(bool(B)) << Text;
    EXPECT_FALSE(bool(parseJobSpec(*B))) << "accepted: " << Text;
  }
}

//===----------------------------------------------------------------------===//
// JobRunner: ensemble shutdown interruption
//===----------------------------------------------------------------------===//

// A member hitting its dt-floor (quarantine) in the same window the
// daemon begins shutting down must leave the job NON-terminal: the
// journal's Accepted-without-terminal shape replays it, and the replay
// resumes from the final checkpoint with the member still quarantined.
// Journaling it as failed would turn a routine restart into a lost sweep.
TEST(DaemonJobRunner, ShutdownDuringMemberDtFloorJournalsNonTerminal) {
  std::string Dir = freshDir("runner-ens-shutdown");
  std::string JPath = Dir + "/journal.lj";
  Journal Jr(JPath);
  ASSERT_TRUE(Jr.open().isOk());
  JobRunner::Config RC;
  RC.StateDir = Dir;
  RC.SimThreads = 1;
  RC.DefaultCheckpointEvery = 50;
  JobRunner Runner(RC, Jr);

  auto J = std::make_shared<Job>();
  J->Spec.Id = 1;
  J->Spec.Model = "HodgkinHuxley";
  J->Spec.NumSteps = 400;
  J->Spec.Guard = true;
  // Middle member poisoned: it blows up within the first scan window and
  // walks the member-local ladder to quarantine.
  J->Spec.EnsembleSweep = "gNa=120,1e9,90";

  ASSERT_TRUE(
      Jr.append(Journal::Kind::Accepted, 1, jobSpecToJson(J->Spec).str())
          .isOk());
  // Shutdown is already in flight when the poisoned member faults: the
  // quarantine happens inside the guarded window, the stop at the step
  // boundary right after it.
  sim::requestShutdown();
  JobState S = Runner.execute(*J);
  sim::clearShutdownRequest();
  EXPECT_EQ(S, JobState::Queued);
  EXPECT_EQ(J->State.load(), JobState::Queued);
  // Non-terminal: no result file, and the journal marks the job live.
  EXPECT_FALSE(std::filesystem::exists(Dir + "/job-1/result.json"));
  Expected<std::vector<Journal::Record>> R = Journal::readAll(JPath);
  ASSERT_TRUE(bool(R));
  ASSERT_EQ(Journal::unfinished(*R).size(), 1u);
  EXPECT_EQ(Journal::unfinished(*R)[0].JobId, 1u);

  // Replay (what the next daemon start does): the job resumes from its
  // final checkpoint and finishes with the quarantine preserved as a
  // delivered partial result.
  J->State.store(JobState::Queued);
  J->Replayed = true;
  EXPECT_EQ(Runner.execute(*J), JobState::Finished);
  EXPECT_EQ(J->MembersOk, 2);
  EXPECT_EQ(J->MembersQuarantined, 1);
  EXPECT_TRUE(std::filesystem::exists(Dir + "/job-1/result.json"));
  EXPECT_TRUE(std::filesystem::exists(Dir + "/job-1/members.ndjson"));
  R = Journal::readAll(JPath);
  ASSERT_TRUE(bool(R));
  EXPECT_TRUE(Journal::unfinished(*R).empty());
  std::filesystem::remove_all(Dir);
}

//===----------------------------------------------------------------------===//
// Event lines
//===----------------------------------------------------------------------===//

TEST(DaemonEvents, TerminalEventChecksumRoundTripsExactly) {
  double Checksum = -32783.205604917683;
  std::string Line = terminalEvent(JobState::Finished, 7, 2000, Checksum,
                                   /*Degraded=*/1, /*Frozen=*/0, {},
                                   /*Replayed=*/true);
  Expected<JsonValue> J = JsonValue::parse(Line);
  ASSERT_TRUE(bool(J));
  EXPECT_EQ(J->stringOr("event", ""), "finished");
  EXPECT_EQ(J->intOr("id", 0), 7);
  EXPECT_EQ(J->intOr("steps", 0), 2000);
  EXPECT_TRUE(J->boolOr("replayed", false));
  // %.17g through a string field: exact to the last bit.
  EXPECT_EQ(std::stod(J->stringOr("checksum", "0")), Checksum);

  std::string Failed = terminalEvent(JobState::Failed, 8, 0, 0, 0, 0,
                                     "model 'X' not found", false);
  Expected<JsonValue> F = JsonValue::parse(Failed);
  ASSERT_TRUE(bool(F));
  EXPECT_EQ(F->stringOr("event", ""), "failed");
  EXPECT_EQ(F->stringOr("error", ""), "model 'X' not found");
  EXPECT_EQ(F->find("checksum"), nullptr); // only finished jobs carry one

  // Finished ensemble jobs carry the member tally; plain jobs omit it.
  EXPECT_EQ(Line.find("members_ok"), std::string::npos);
  std::string Ens = terminalEvent(JobState::Finished, 9, 1000, 1.5, 0, 3, {},
                                  false, /*MembersOk=*/997,
                                  /*MembersQuarantined=*/3);
  Expected<JsonValue> E = JsonValue::parse(Ens);
  ASSERT_TRUE(bool(E));
  EXPECT_EQ(E->intOr("members_ok", -1), 997);
  EXPECT_EQ(E->intOr("members_quarantined", -1), 3);
}

} // namespace
