//===- limpetc.cpp - limpetMLIR compiler driver ---------------------------------===//
//
// Command-line driver over the compilation pipeline, in the spirit of
// mlir-opt: reads an EasyML model (a file, or a suite model by name) and
// prints the requested stage.
//
//   limpetc --list                          all 43 suite models
//   limpetc HodgkinHuxley --info            semantic summary
//   limpetc model.easyml --ir               optimized scalar kernel IR
//   limpetc OHara --vector-ir --width 8     vectorized kernel IR
//   limpetc OHara --bytecode --layout aosoa compiled register program
//   limpetc OHara --luts                    extracted LUT columns
//   limpetc OHara --passes=cse,licm,dce --print-ir-after=opt
//   limpetc OHara --emit-artifact o.lmpa    serialize the compiled model
//   limpetc OHara --load-artifact o.lmpa --run   run it, skipping codegen
//   limpetc --suite --width 8               compile all 43 concurrently
//
//===----------------------------------------------------------------------===//

#include "codegen/Vectorize.h"
#include "compiler/Artifact.h"
#include "compiler/CompileCache.h"
#include "compiler/CompilerDriver.h"
#include "compiler/KernelEmitter.h"
#include "easyml/Preprocessor.h"
#include "easyml/Sema.h"
#include "exec/Backend.h"
#include "exec/BytecodeCompiler.h"
#include "ir/Context.h"
#include "ir/Printer.h"
#include "models/Registry.h"
#include "sim/Ensemble.h"
#include "sim/Simulator.h"
#include "sim/TissueSimulator.h"
#include "support/StringUtils.h"
#include "support/Telemetry.h"
#include "support/Trace.h"
#include "transforms/Pass.h"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <optional>
#include <sstream>

using namespace limpet;

namespace {

void printUsage() {
  std::printf(
      "usage: limpetc <model-name|file.easyml> [options]\n"
      "       limpetc --suite [options]\n"
      "  --list              list the 43 suite models and exit\n"
      "  --info              semantic summary (default)\n"
      "  --program           integrator-expanded update expressions\n"
      "  --luts              extracted LUT table columns\n"
      "  --ir                optimized scalar kernel IR\n"
      "  --vector-ir         vectorized kernel IR\n"
      "  --bytecode          compiled register bytecode\n"
      "  --width N|auto      vector width 2/4/8 (default 8); auto picks the\n"
      "                      execution point per model from the persisted\n"
      "                      tuning record, the autotuner (--autotune) or\n"
      "                      the host-capability heuristic\n"
      "  --autotune          with --width=auto: when no tuning record\n"
      "                      exists, benchmark every registry point and\n"
      "                      persist the winner ($LIMPET_CACHE_DIR/*.tune)\n"
      "  --tune-report       print the persisted tuning record (winner and\n"
      "                      per-point measurements) and exit\n"
      "  --layout aos|soa|aosoa (default aos; aosoa for --vector-ir)\n"
      "  --no-lut            disable LUT extraction\n"
      "  --no-passes         skip the optimization pipeline\n"
      "  --passes=P1,P2,...  run this pass pipeline instead of the default\n"
      "                      (mlir-opt style; see --passes=help)\n"
      "  --print-ir-after=S  print the IR snapshot after stage S (repeatable;\n"
      "                      stages: frontend, preprocess, integrator,\n"
      "                      lut-analysis, emit-ir, opt, vectorize,\n"
      "                      emit-bytecode)\n"
      "  --print-ir-after-all  print the snapshot after every stage\n"
      "  --emit-artifact F   compile and serialize the model to F\n"
      "  --load-artifact F   assemble the model from F instead of running\n"
      "                      codegen (combine with --run)\n"
      "  --suite             compile every suite model concurrently under\n"
      "                      the selected configuration (content-addressed\n"
      "                      cache; set LIMPET_CACHE_DIR for a disk tier)\n"
      "  --jobs N            bound the --suite compile fan-out to N threads\n"
      "                      (--jobs=1 compiles strictly in registry order)\n"
      "  --engine=vm|native|auto  execution tier (default vm). native\n"
      "                      compiles the model's program to machine code\n"
      "                      via the system C++ compiler and dlopen (warns\n"
      "                      and falls back to the VM when no toolchain is\n"
      "                      available); auto does the same silently.\n"
      "                      See docs/COMPILER.md for cache + env knobs\n"
      "  --no-cache          bypass the compile cache\n"
      "  --cache-gc          evict the disk cache tier down to\n"
      "                      LIMPET_CACHE_MAX_BYTES (LRU by mtime) and exit\n"
      "  --run               compile and simulate, printing a run report\n"
      "  --steps N           simulation steps for --run (default 1000);\n"
      "                      with --resume, the *total* target step\n"
      "  --cells N           population size for --run (default 256)\n"
      "  --dt MS             integration step in ms for --run (default\n"
      "                      0.01)\n"
      "  --tissue NX[xNY]    run a reaction-diffusion tissue grid instead\n"
      "                      of an uncoupled population: NX*NY nodes\n"
      "                      coupled by Vm diffusion under Strang\n"
      "                      splitting (overrides --cells; docs/TISSUE.md)\n"
      "  --dx D              tissue node spacing in cm (default 0.025)\n"
      "  --sigma S           effective diffusivity sigma/(beta*Cm) in\n"
      "                      cm^2/ms (default 0.001)\n"
      "  --diffusion M       diffusion method for --tissue: ftcs\n"
      "                      (explicit, default) or cn (Crank-Nicolson,\n"
      "                      1D only)\n"
      "  --stim P            tissue stimulus protocol: 's1s2:key=v,...',\n"
      "                      'cross:...', 'region:...' clauses joined by\n"
      "                      ';', or 'none' (grammar in docs/TISSUE.md;\n"
      "                      default: a pulse train on the x=0 edge)\n"
      "  --cv A,B            with --tissue: record an activation map and\n"
      "                      print the conduction velocity between node\n"
      "                      indices A and B after the run\n"
      "  --sweep EXPR        run a parameter-sweep ensemble instead of one\n"
      "                      uniform population: 'gK=0.1:0.5:5;gNa=7,11'\n"
      "                      expands a value grid (cross product), each\n"
      "                      point one member, every member stepped by ONE\n"
      "                      compiled kernel with member-local fault\n"
      "                      quarantine (docs/ENSEMBLE.md)\n"
      "  --ensemble F        like --sweep but with an explicit JSON member\n"
      "                      list: an array of {\"param\": value} objects,\n"
      "                      or {\"cells_per_member\":n,\"members\":[...]}\n"
      "  --member-cells N    cells each ensemble member simulates\n"
      "                      (default 1)\n"
      "  --member-stats F    after an ensemble run, write one NDJSON line\n"
      "                      per member (status, retries, quarantine\n"
      "                      reason, state checksum) to F\n"
      "  --guard             enable the numerical guard rails for --run\n"
      "                      (health scan, checkpoint/retry, degradation;\n"
      "                      see docs/ROBUSTNESS.md)\n"
      "  --checkpoint-dir D  write durable checkpoints into D during --run\n"
      "                      (rotated ckpt-<step>.lmpc files; SIGINT/SIGTERM\n"
      "                      write one final checkpoint and exit cleanly)\n"
      "  --checkpoint-every N  checkpoint cadence in steps (default 0 =\n"
      "                      only the final shutdown checkpoint)\n"
      "  --retain N          rotated checkpoints to keep (default 3)\n"
      "  --resume            resume --run from the newest valid checkpoint\n"
      "                      in --checkpoint-dir (corrupt/truncated files\n"
      "                      are skipped; the run continues bit-identically\n"
      "                      to an uninterrupted one)\n"
      "  --timeout S         wall-clock budget in seconds for --run: the\n"
      "                      same cooperative deadline limpetd enforces.\n"
      "                      The run stops at a step boundary, writes one\n"
      "                      final checkpoint (with --checkpoint-dir), and\n"
      "                      exits 3 — recoverable via --resume\n"
      "  --stats             print the pass-timing table and telemetry\n"
      "                      counters (see docs/OBSERVABILITY.md)\n"
      "  --trace FILE        write a Chrome trace-event JSON covering\n"
      "                      parse/sema/codegen/run to FILE\n");
}

/// Keeps a TraceRecorder active for the lifetime of the driver and writes
/// it to Path on destruction, so every exit path produces a valid trace.
class TraceFile {
public:
  explicit TraceFile(std::string Path) : Path(std::move(Path)) {
    if (!this->Path.empty())
      telemetry::TraceRecorder::setActive(&Recorder);
  }
  TraceFile(const TraceFile &) = delete;
  TraceFile &operator=(const TraceFile &) = delete;
  ~TraceFile() {
    if (Path.empty())
      return;
    telemetry::TraceRecorder::setActive(nullptr);
    if (!telemetry::kEnabled) {
      std::fprintf(stderr,
                   "warning: --trace ignored (telemetry disabled at build "
                   "time)\n");
      return;
    }
    std::string Error;
    if (Recorder.writeFile(Path, &Error))
      std::fprintf(stderr, "wrote %zu trace events to %s\n",
                   Recorder.eventCount(), Path.c_str());
    else
      std::fprintf(stderr, "error: %s\n", Error.c_str());
  }

private:
  std::string Path;
  telemetry::TraceRecorder Recorder;
};

/// Prints the optimization-pass table (once one is available) and the
/// telemetry counter summary when the driver exits with --stats set.
class StatsReport {
public:
  explicit StatsReport(bool Enabled) : Enabled(Enabled) {}
  StatsReport(const StatsReport &) = delete;
  StatsReport &operator=(const StatsReport &) = delete;
  void setPassStats(const transforms::PassStatistics &S) { Table = S.str(); }
  ~StatsReport() {
    if (!Enabled)
      return;
    if (!Table.empty())
      std::printf("\n%s", Table.c_str());
    std::printf("\n%s", telemetry::summaryReport().c_str());
  }

private:
  bool Enabled;
  std::string Table;
};

/// Reads a whole file; nullopt when the file cannot be opened. An
/// unreadable path used to read back as "" and silently compile as an
/// empty model; now it is a hard error, while a genuinely empty file
/// still reaches the frontend (which warns about the contentless model).
std::optional<std::string> readFile(const char *Path) {
  std::ifstream In(Path);
  if (!In)
    return std::nullopt;
  std::ostringstream Ss;
  Ss << In.rdbuf();
  return Ss.str();
}

/// "cold", "warm-mem" or "warm-disk" for a compile result.
const char *compileKind(const compiler::CompileResult &R) {
  if (!R.CacheHit)
    return "cold";
  return R.DiskHit ? "warm-disk" : "warm-mem";
}

/// How the native kernel was obtained, for the status line the JIT smoke
/// harness greps: "compiled" means the system compiler actually ran.
const char *nativeKind(const compiler::CompileResult &R) {
  if (!R.NativeCacheHit)
    return "compiled";
  return R.NativeDiskHit ? "cache-disk" : "cache-mem";
}

/// Reports the native-tier outcome for one compile to stderr. Silent when
/// the VM tier was requested; a missing native kernel is a warning under
/// --engine=native and silent under --engine=auto (fallback by design).
void reportNativeTier(const compiler::CompileResult &R,
                      exec::EngineTier Tier) {
  if (Tier == exec::EngineTier::VM || !R)
    return;
  if (R.NativeAttached) {
    std::fprintf(stderr, "native kernel %s: %s (key %016llx)\n",
                 R.ModelName.c_str(), nativeKind(R),
                 (unsigned long long)R.NativeKey);
    return;
  }
  if (Tier == exec::EngineTier::Native)
    std::fprintf(stderr,
                 "warning: native tier unavailable for %s, running on the "
                 "VM: %s\n",
                 R.ModelName.c_str(), R.NativeErr.message().c_str());
}

void printSnapshots(const compiler::CompileResult &R) {
  for (const compiler::StageRecord &S : R.Stages)
    if (!S.Snapshot.empty())
      std::printf("// ----- after %s -----\n%s\n",
                  std::string(compiler::stageName(S.S)).c_str(),
                  S.Snapshot.c_str());
}

} // namespace

int main(int argc, char **argv) {
  if (argc < 2) {
    printUsage();
    return 1;
  }

  enum class Mode { Info, Program, Luts, IR, VectorIR, Bytecode, Run, Suite };
  Mode M = Mode::Info;
  std::string ModelArg;
  unsigned Width = 8;
  bool WidthSet = false;
  bool WidthAuto = false;
  bool Autotune = false;
  bool TuneReport = false;
  codegen::StateLayout Layout = codegen::StateLayout::AoS;
  bool LayoutSet = false;
  bool EnableLuts = true, RunPasses = true;
  std::string PassesSpec;
  bool PassesSet = false;
  std::vector<compiler::Stage> PrintIRAfter;
  bool PrintIRAll = false;
  std::string EmitArtifactPath, LoadArtifactPath;
  bool UseCache = true;
  int64_t RunSteps = 1000, RunCells = 256;
  double RunDt = 0.01;
  std::string TissueSpec, StimSpec, CvSpec;
  std::string SweepSpec, EnsembleJsonPath, MemberStatsPath;
  int64_t MemberCells = 1;
  double TissueDx = 0.025, TissueSigma = 0.001;
  sim::DiffusionMethod DiffMethod = sim::DiffusionMethod::FTCS;
  bool RunGuard = false;
  bool Stats = false;
  std::string TracePath;
  std::string CkptDir;
  int64_t CkptEvery = 0;
  int64_t CkptRetain = 3;
  double TimeoutSec = 0;
  bool Resume = false;
  bool CacheGc = false;
  unsigned SuiteJobs = 0;
  exec::EngineTier Tier = exec::EngineTier::VM;

  // Accepts both "--flag value" and "--flag=value" for the valued flags
  // below; returns the value through Out.
  auto valued = [&](const std::string &Arg, int &I, const char *Flag,
                    std::string &Out) {
    size_t N = std::strlen(Flag);
    if (Arg.compare(0, N, Flag) == 0 && Arg.size() > N && Arg[N] == '=') {
      Out = Arg.substr(N + 1);
      return true;
    }
    if (Arg == Flag && I + 1 < argc) {
      Out = argv[++I];
      return true;
    }
    return false;
  };

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    std::string Val;
    if (Arg == "--list") {
      for (const models::ModelEntry &E : models::modelRegistry())
        std::printf("%-24s %s %s\n", E.Name.c_str(),
                    E.SizeClass == 'S'   ? "small "
                    : E.SizeClass == 'M' ? "medium"
                                         : "large ",
                    E.IsClassic ? "(classic)" : "(synthetic)");
      return 0;
    } else if (Arg == "--info")
      M = Mode::Info;
    else if (Arg == "--program")
      M = Mode::Program;
    else if (Arg == "--luts")
      M = Mode::Luts;
    else if (Arg == "--ir")
      M = Mode::IR;
    else if (Arg == "--vector-ir")
      M = Mode::VectorIR;
    else if (Arg == "--bytecode")
      M = Mode::Bytecode;
    else if (Arg == "--run")
      M = Mode::Run;
    else if (Arg == "--suite")
      M = Mode::Suite;
    else if (Arg == "--no-lut")
      EnableLuts = false;
    else if (Arg == "--no-passes")
      RunPasses = false;
    else if (Arg == "--no-cache")
      UseCache = false;
    else if (Arg == "--cache-gc")
      CacheGc = true;
    else if (Arg == "--guard")
      RunGuard = true;
    else if (Arg == "--resume")
      Resume = true;
    else if (valued(Arg, I, "--checkpoint-dir", Val))
      CkptDir = Val;
    else if (valued(Arg, I, "--checkpoint-every", Val))
      CkptEvery = std::atoll(Val.c_str());
    else if (valued(Arg, I, "--retain", Val))
      CkptRetain = std::atoll(Val.c_str());
    else if (valued(Arg, I, "--timeout", Val))
      TimeoutSec = std::atof(Val.c_str());
    else if (valued(Arg, I, "--jobs", Val))
      SuiteJobs = unsigned(std::atoi(Val.c_str()));
    else if (valued(Arg, I, "--engine", Val)) {
      std::optional<exec::EngineTier> T = exec::engineTierFromName(Val);
      if (!T) {
        std::fprintf(stderr, "error: unknown engine '%s' (vm, native, auto)\n",
                     Val.c_str());
        return 1;
      }
      Tier = *T;
    }
    else if (Arg == "--stats")
      Stats = true;
    else if (Arg == "--print-ir-after-all")
      PrintIRAll = true;
    else if (startsWith(Arg, "--print-ir-after=")) {
      std::string StageStr = Arg.substr(std::strlen("--print-ir-after="));
      std::optional<compiler::Stage> S = compiler::stageFromName(StageStr);
      if (!S) {
        std::fprintf(stderr, "error: unknown stage '%s' (stages: %s)\n",
                     StageStr.c_str(), compiler::stageNameList().c_str());
        return 1;
      }
      PrintIRAfter.push_back(*S);
    } else if (startsWith(Arg, "--passes=")) {
      PassesSpec = Arg.substr(std::strlen("--passes="));
      PassesSet = true;
      if (PassesSpec == "help") {
        std::printf("registered passes:");
        for (std::string_view P : transforms::registeredPassNames())
          std::printf(" %s", std::string(P).c_str());
        std::printf("\ndefault pipeline: %s\n",
                    std::string(transforms::defaultPassPipelineSpec()).c_str());
        return 0;
      }
    } else if (Arg == "--passes" && I + 1 < argc) {
      PassesSpec = argv[++I];
      PassesSet = true;
    } else if (Arg == "--emit-artifact" && I + 1 < argc)
      EmitArtifactPath = argv[++I];
    else if (Arg == "--load-artifact" && I + 1 < argc)
      LoadArtifactPath = argv[++I];
    else if (Arg == "--trace" && I + 1 < argc)
      TracePath = argv[++I];
    else if (Arg == "--steps" && I + 1 < argc)
      RunSteps = std::atoll(argv[++I]);
    else if (Arg == "--cells" && I + 1 < argc)
      RunCells = std::atoll(argv[++I]);
    else if (valued(Arg, I, "--dt", Val))
      RunDt = std::atof(Val.c_str());
    else if (valued(Arg, I, "--tissue", Val))
      TissueSpec = Val;
    else if (valued(Arg, I, "--dx", Val))
      TissueDx = std::atof(Val.c_str());
    else if (valued(Arg, I, "--sigma", Val))
      TissueSigma = std::atof(Val.c_str());
    else if (valued(Arg, I, "--stim", Val))
      StimSpec = Val;
    else if (valued(Arg, I, "--cv", Val))
      CvSpec = Val;
    else if (valued(Arg, I, "--sweep", Val))
      SweepSpec = Val;
    else if (valued(Arg, I, "--ensemble", Val))
      EnsembleJsonPath = Val;
    else if (valued(Arg, I, "--member-cells", Val))
      MemberCells = std::atoll(Val.c_str());
    else if (valued(Arg, I, "--member-stats", Val))
      MemberStatsPath = Val;
    else if (valued(Arg, I, "--diffusion", Val)) {
      Expected<sim::DiffusionMethod> D = sim::parseDiffusionMethod(Val);
      if (!D) {
        std::fprintf(stderr, "error: %s\n", D.status().message().c_str());
        return 1;
      }
      DiffMethod = *D;
    }
    else if (valued(Arg, I, "--width", Val)) {
      WidthSet = true;
      if (Val == "auto")
        WidthAuto = true;
      else
        Width = unsigned(std::atoi(Val.c_str()));
    } else if (Arg == "--autotune")
      Autotune = true;
    else if (Arg == "--tune-report")
      TuneReport = true;
    else if (Arg == "--layout" && I + 1 < argc) {
      std::string L = argv[++I];
      LayoutSet = true;
      if (L == "aos")
        Layout = codegen::StateLayout::AoS;
      else if (L == "soa")
        Layout = codegen::StateLayout::SoA;
      else if (L == "aosoa")
        Layout = codegen::StateLayout::AoSoA;
      else {
        std::fprintf(stderr, "error: unknown layout '%s'\n", L.c_str());
        return 1;
      }
    } else if (!startsWith(Arg, "--") && ModelArg.empty()) {
      ModelArg = Arg;
    } else {
      std::fprintf(stderr, "error: unknown option '%s'\n", Arg.c_str());
      printUsage();
      return 1;
    }
  }
  // AoSoA is the natural layout when asking for vector IR.
  if (M == Mode::VectorIR && !LayoutSet)
    Layout = codegen::StateLayout::AoSoA;

  // The ensemble flags only make sense together with --run, and a sweep
  // cannot come from two places at once.
  bool WantEnsemble = !SweepSpec.empty() || !EnsembleJsonPath.empty();
  if (!SweepSpec.empty() && !EnsembleJsonPath.empty()) {
    std::fprintf(stderr,
                 "error: --sweep and --ensemble are mutually exclusive\n");
    return 1;
  }
  if (WantEnsemble && M != Mode::Run) {
    std::fprintf(stderr, "error: --sweep/--ensemble need --run\n");
    return 1;
  }
  if (WantEnsemble && !TissueSpec.empty()) {
    std::fprintf(stderr,
                 "error: --sweep/--ensemble cannot combine with --tissue\n");
    return 1;
  }
  if (MemberCells < 1) {
    std::fprintf(stderr, "error: --member-cells must be >= 1\n");
    return 1;
  }

  // Eagerly validate a custom pipeline string so a typo is one clear error
  // even before any model is parsed.
  if (PassesSet) {
    ir::Context Ctx;
    transforms::PassManager PM(Ctx);
    if (Status S = transforms::parsePassPipeline(PassesSpec, PM); !S) {
      std::fprintf(stderr, "error: %s\n", S.message().c_str());
      return 1;
    }
  }

  if (CacheGc) {
    compiler::CompileCache &Cache = compiler::CompileCache::global();
    std::string Dir = Cache.diskDir();
    if (Dir.empty()) {
      std::fprintf(stderr, "error: --cache-gc needs a disk cache tier "
                           "(set LIMPET_CACHE_DIR)\n");
      return 1;
    }
    uint64_t Budget = Cache.diskBudget();
    compiler::CompileCache::GcStats G = Cache.gcDiskTier(Budget);
    if (Budget == 0)
      std::printf("cache %s: %llu bytes, no budget set "
                  "(LIMPET_CACHE_MAX_BYTES), nothing evicted\n",
                  Dir.c_str(), (unsigned long long)G.BytesBefore);
    else
      std::printf("cache %s: %llu -> %llu bytes (budget %llu), "
                  "%zu file(s) evicted\n",
                  Dir.c_str(), (unsigned long long)G.BytesBefore,
                  (unsigned long long)G.BytesAfter,
                  (unsigned long long)Budget, G.FilesRemoved);
    return 0;
  }

  // Both guards outlive every mode below: the recorder captures
  // parse->sema->codegen->run, and the stats report prints on any exit.
  TraceFile Trace(TracePath);
  StatsReport StatsOut(Stats);

  // The engine configuration for the driver-based modes (--run, --suite,
  // artifacts, --print-ir-after).
  // --tune-report with no explicit width reports under the auto-width
  // flags, since that is the configuration tuning records are keyed by.
  if (TuneReport && !WidthSet)
    WidthAuto = true;
  exec::EngineConfig Cfg = WidthAuto ? exec::EngineConfig::autoTuned()
                           : WidthSet && Width > 1
                               ? exec::EngineConfig::limpetMLIR(Width)
                               : exec::EngineConfig::baseline();
  if (LayoutSet)
    Cfg.Layout = Layout;
  Cfg.EnableLuts = EnableLuts;
  Cfg.RunPasses = RunPasses;
  Cfg.PassPipeline = PassesSpec;

  compiler::DriverOptions DriverOpts;
  DriverOpts.Config = Cfg;
  DriverOpts.Tier = Tier;
  DriverOpts.Autotune = Autotune;
  DriverOpts.UseCache = UseCache && !PrintIRAll && PrintIRAfter.empty();
  DriverOpts.SnapshotAll = PrintIRAll;
  DriverOpts.SnapshotStages = PrintIRAfter;
  compiler::CompilerDriver Driver(DriverOpts);

  // --tune-report: print the persisted tuning record(s) under the current
  // flags (the key covers the math/LUT/pipeline flags and the engine
  // tier, not the tuned width/layout axes) and exit.
  if (TuneReport) {
    const exec::BackendRegistry &Reg = exec::BackendRegistry::global();
    bool AllowNative = Tier != exec::EngineTier::VM;
    std::vector<std::pair<std::string, std::string>> Targets;
    if (M == Mode::Suite || ModelArg.empty()) {
      for (const models::ModelEntry &E : models::modelRegistry())
        Targets.emplace_back(E.Name, E.Source);
    } else if (const models::ModelEntry *E = models::findModel(ModelArg)) {
      Targets.emplace_back(E->Name, E->Source);
    } else if (std::optional<std::string> Read = readFile(ModelArg.c_str())) {
      Targets.emplace_back(ModelArg, std::move(*Read));
    } else {
      std::fprintf(stderr,
                   "error: '%s' is neither a file nor a suite model\n",
                   ModelArg.c_str());
      return 1;
    }
    std::printf("backend registry: %s, fingerprint %016llx\n",
                Reg.isa().c_str(), (unsigned long long)Reg.fingerprint());
    size_t Found = 0;
    for (const auto &[TName, TSource] : Targets) {
      uint64_t Key =
          compiler::tuneKey(TSource, Cfg, AllowNative, Reg.fingerprint());
      std::optional<compiler::TuningRecord> Rec =
          compiler::readTuningRecord(Key);
      if (!Rec) {
        std::printf("%-24s no tuning record (key %016llx)\n", TName.c_str(),
                    (unsigned long long)Key);
        continue;
      }
      ++Found;
      std::printf("%-24s best %-14s %12.4g cell-steps/s (key %016llx)\n",
                  TName.c_str(), Rec->Best.name().c_str(), Rec->BestRate,
                  (unsigned long long)Key);
      for (const compiler::TuneMeasurement &Mm : Rec->Measurements)
        std::printf("    %-14s %12.4g cell-steps/s\n", Mm.Point.c_str(),
                    Mm.CellStepsPerSec);
    }
    std::printf("tuning records: %zu/%zu models\n", Found, Targets.size());
    return 0;
  }

  if (M == Mode::Suite) {
    std::vector<const models::ModelEntry *> Entries;
    for (const models::ModelEntry &E : models::modelRegistry())
      Entries.push_back(&E);
    std::vector<compiler::CompileResult> Results =
        Driver.compileSuite(Entries, SuiteJobs);
    size_t Ok = 0, Cold = 0, Warm = 0;
    for (const compiler::CompileResult &R : Results) {
      if (!R) {
        std::printf("%-24s ERROR: %s\n", R.ModelName.c_str(),
                    R.Err.message().c_str());
        continue;
      }
      ++Ok;
      (R.CacheHit ? Warm : Cold)++;
      if (R.AutoSelected) {
        // The per-model tuned-point summary: chosen point, where the
        // choice came from, and the measured rate (heuristic/forced picks
        // were never measured).
        char Rate[64] = "-";
        if (R.AutoRate > 0)
          std::snprintf(Rate, sizeof(Rate), "%.4g cell-steps/s", R.AutoRate);
        std::printf("%-24s %-10s %8.2f ms  %-14s %-9s %s\n",
                    R.ModelName.c_str(), compileKind(R),
                    double(R.TotalNs) * 1e-6, R.AutoPointName.c_str(),
                    std::string(compiler::tuneSourceName(R.AutoSource))
                        .c_str(),
                    Rate);
      } else
        std::printf("%-24s %-10s %8.2f ms\n", R.ModelName.c_str(),
                    compileKind(R), double(R.TotalNs) * 1e-6);
      reportNativeTier(R, Tier);
    }
    std::printf("compiled %zu/%zu models (%s): %zu cold, %zu warm\n", Ok,
                Results.size(), exec::engineConfigName(Cfg).c_str(), Cold,
                Warm);
    if (Tier != exec::EngineTier::VM) {
      size_t Attached = 0;
      for (const compiler::CompileResult &R : Results)
        Attached += R.NativeAttached;
      std::fprintf(stderr, "native tier: %zu/%zu models attached\n", Attached,
                   Results.size());
    }
    return Ok == Results.size() ? 0 : 1;
  }

  if (ModelArg.empty()) {
    std::fprintf(stderr, "error: no model named (try --list)\n");
    return 1;
  }
  std::string Name = ModelArg;
  std::string Source;
  if (endsWith(Name, ".easyml") || endsWith(Name, ".model")) {
    std::optional<std::string> Read = readFile(ModelArg.c_str());
    if (!Read) {
      std::fprintf(stderr, "error: cannot read '%s'\n", ModelArg.c_str());
      return 1;
    }
    Source = std::move(*Read);
  } else if (const models::ModelEntry *E = models::findModel(Name)) {
    Source = E->Source;
  } else {
    std::fprintf(stderr,
                 "error: '%s' is neither a file nor a suite model (try "
                 "--list)\n",
                 ModelArg.c_str());
    return 1;
  }

  // Driver-based paths: --load-artifact / --run / --emit-artifact /
  // --print-ir-after. Everything is recoverable: a broken pipeline, a
  // corrupt artifact or a failed stage prints one error and exits 1.
  bool WantSnapshots = PrintIRAll || !PrintIRAfter.empty();
  if (!LoadArtifactPath.empty() || M == Mode::Run ||
      !EmitArtifactPath.empty() || WantSnapshots) {
    compiler::CompileResult R;
    if (!LoadArtifactPath.empty()) {
      Expected<compiler::Artifact> A =
          compiler::readArtifactFile(LoadArtifactPath);
      if (!A) {
        std::fprintf(stderr, "error: %s\n", A.status().message().c_str());
        return 1;
      }
      R = Driver.loadArtifact(*A, Name, Source);
    } else {
      R = Driver.compileSource(Name, Source);
    }
    printSnapshots(R);
    if (!R) {
      std::fprintf(stderr, "error: %s\n", R.Err.message().c_str());
      return 1;
    }
    StatsOut.setPassStats(R.Model->kernel().PassStats);
    std::fprintf(stderr, "compiled %s (%s): %s, %.2f ms\n", Name.c_str(),
                 exec::engineConfigName(R.Model->config()).c_str(),
                 compileKind(R), double(R.TotalNs) * 1e-6);
    if (R.AutoSelected)
      std::fprintf(stderr, "auto point: %s via %s (key %016llx)\n",
                   R.AutoPointName.c_str(),
                   std::string(compiler::tuneSourceName(R.AutoSource))
                       .c_str(),
                   (unsigned long long)R.TuneKey);
    reportNativeTier(R, Tier);

    if (!EmitArtifactPath.empty()) {
      compiler::Artifact A =
          compiler::CompilerDriver::makeArtifact(*R.Model, Name, R.SourceHash);
      if (Status S = compiler::writeArtifactFile(A, EmitArtifactPath); !S) {
        std::fprintf(stderr, "error: %s\n", S.message().c_str());
        return 1;
      }
      std::string Bytes = compiler::serializeArtifact(A);
      std::printf("wrote artifact %s (%zu bytes, source hash %016llx)\n",
                  EmitArtifactPath.c_str(), Bytes.size(),
                  (unsigned long long)A.SourceHash);
    }

    if (M == Mode::Run) {
      const exec::CompiledModel &Model = *R.Model;
      sim::SimOptions Opts;
      Opts.NumCells = RunCells;
      Opts.NumSteps = RunSteps;
      Opts.Dt = RunDt;
      Opts.StimPeriod = 100.0;
      Opts.Guard.Enabled = RunGuard;
      // --tissue=NX[xNY]: the grid's node count replaces --cells.
      sim::TissueGrid Grid;
      bool Tissue = !TissueSpec.empty();
      if (Tissue) {
        long long NX = 0, NY = 1;
        char Sep = 0;
        int N = std::sscanf(TissueSpec.c_str(), "%lld%c%lld", &NX, &Sep, &NY);
        if (N == 1)
          NY = 1;
        else if (N != 3 || (Sep != 'x' && Sep != 'X')) {
          std::fprintf(stderr,
                       "error: bad --tissue spec '%s' (want NX or NXxNY)\n",
                       TissueSpec.c_str());
          return 1;
        }
        if (NX < 1 || NY < 1) {
          std::fprintf(stderr, "error: --tissue dimensions must be >= 1\n");
          return 1;
        }
        Grid = {NX, NY, TissueDx};
      }
      if (Resume && CkptDir.empty()) {
        std::fprintf(stderr,
                     "error: --resume needs --checkpoint-dir\n");
        return 1;
      }
      if (!CkptDir.empty()) {
        // Probe the directory up front: an unwritable --checkpoint-dir is
        // one clear error before the run, not a failure at step 99,000.
        sim::CheckpointStore Store(CkptDir, int(CkptRetain));
        if (Status St = Store.prepare(); !St) {
          std::fprintf(stderr, "error: %s\n", St.message().c_str());
          return 1;
        }
        Opts.Checkpoint.Dir = CkptDir;
        Opts.Checkpoint.EveryN = CkptEvery;
        Opts.Checkpoint.Retain = int(CkptRetain);
        Opts.Checkpoint.SourceHash = R.SourceHash;
        sim::installShutdownHandlers();
      }
      // The --timeout deadline rides the same cooperative cancel token
      // limpetd arms for its jobs: polled at step boundaries, never
      // mid-step, so the final checkpoint is always resumable.
      sim::CancelToken Deadline;
      if (TimeoutSec > 0) {
        Deadline.setDeadlineAfter(TimeoutSec);
        Opts.Cancel = &Deadline;
      }
      // --cv=A,B: probe node indices for the post-run conduction-velocity
      // readout (tissue only).
      long long CvA = -1, CvB = -1;
      if (!CvSpec.empty()) {
        if (!Tissue) {
          std::fprintf(stderr, "error: --cv needs --tissue\n");
          return 1;
        }
        if (std::sscanf(CvSpec.c_str(), "%lld,%lld", &CvA, &CvB) != 2 ||
            CvA < 0 || CvB < 0 || CvA == CvB ||
            CvA >= Grid.numNodes() || CvB >= Grid.numNodes()) {
          std::fprintf(stderr,
                       "error: bad --cv spec '%s' (want two distinct node "
                       "indices A,B inside the grid)\n",
                       CvSpec.c_str());
          return 1;
        }
      }
      // The ensemble model owns the lowered CompiledModel; declared before
      // S so it outlives the runner built on it.
      std::optional<sim::EnsembleModel> EMod;
      std::unique_ptr<sim::Simulator> S;
      sim::TissueSimulator *TissueSim = nullptr;
      sim::EnsembleRunner *EnsSim = nullptr;
      if (Tissue) {
        sim::TissueOptions TO;
        TO.Grid = Grid;
        TO.Sigma = TissueSigma;
        TO.Method = DiffMethod;
        if (!StimSpec.empty()) {
          Expected<sim::StimulusProtocol> P =
              sim::StimulusProtocol::parse(StimSpec, Grid);
          if (!P) {
            std::fprintf(stderr, "error: %s\n",
                         P.status().message().c_str());
            return 1;
          }
          TO.Stim = *P;
        }
        TO.Sim = Opts;
        auto TS = std::make_unique<sim::TissueSimulator>(Model, TO);
        if (Status St = TS->preflight(); !St) {
          std::fprintf(stderr, "error: %s\n", St.message().c_str());
          return 1;
        }
        std::printf("tissue %lldx%lld: dx=%g cm, sigma=%g cm^2/ms, "
                    "diffusion=%s, stim=%s\n",
                    (long long)TS->grid().NX, (long long)TS->grid().NY,
                    TS->grid().Dx, TS->tissueOptions().Sigma,
                    std::string(sim::diffusionMethodName(
                                    TS->tissueOptions().Method))
                        .c_str(),
                    TS->stimulus().str().c_str());
        if (CvA >= 0)
          TS->enableActivationMap(-20.0);
        TissueSim = TS.get();
        S = std::move(TS);
      } else if (WantEnsemble) {
        Expected<sim::EnsembleSpec> Spec =
            !SweepSpec.empty()
                ? sim::EnsembleSpec::fromSweep(SweepSpec, MemberCells)
                : sim::EnsembleSpec::fromJsonFile(EnsembleJsonPath,
                                                  MemberCells);
        if (!Spec) {
          std::fprintf(stderr, "error: %s\n",
                       Spec.status().message().c_str());
          return 1;
        }
        // The sweep lowers its swept parameters to per-cell externals and
        // compiles the lowered model ONCE under the configuration the
        // driver already resolved (so --width=auto applies to the whole
        // population). That needs the raw ModelInfo, not the compiled
        // model above.
        DiagnosticEngine EnsDiags;
        auto EnsInfo = easyml::compileModelInfo(Name, Source, EnsDiags);
        if (!EnsInfo) {
          std::fprintf(stderr, "%s", EnsDiags.str().c_str());
          return 1;
        }
        Expected<sim::EnsembleModel> Built = sim::buildEnsembleModel(
            *EnsInfo, std::move(*Spec), Model.config());
        if (!Built) {
          std::fprintf(stderr, "error: %s\n",
                       Built.status().message().c_str());
          return 1;
        }
        EMod.emplace(std::move(*Built));
        // Native tier for the lowered kernel, keyed off the base compile
        // key extended with the lowering (the base model's cached .so
        // must never serve the lowered program).
        if (Tier != exec::EngineTier::VM) {
          uint64_t LowerKey = compiler::fnv1a64("ensemble", R.CacheKey);
          for (const std::string &P : EMod->Swept)
            LowerKey = compiler::fnv1a64(P, LowerKey);
          compiler::NativeAttachResult N = compiler::getOrEmitNativeKernel(
              *EMod->Model, LowerKey, Name + "_ensemble");
          if (N)
            EMod->Model->attachNative(std::move(N.Kernel));
          else if (Tier == exec::EngineTier::Native)
            std::fprintf(stderr,
                         "warning: native tier unavailable for the "
                         "ensemble kernel, running on the VM: %s\n",
                         N.Err.message().c_str());
        }
        auto ER = std::make_unique<sim::EnsembleRunner>(*EMod, Opts);
        std::string SweptNames;
        for (const std::string &P : EMod->Swept) {
          if (!SweptNames.empty())
            SweptNames += ",";
          SweptNames += P;
        }
        std::printf("ensemble: %lld members x %lld cells (swept: %s)\n",
                    (long long)ER->numMembers(),
                    (long long)ER->cellsPerMember(), SweptNames.c_str());
        EnsSim = ER.get();
        S = std::move(ER);
      } else {
        S = std::make_unique<sim::Simulator>(Model, Opts);
      }
      if (Resume) {
        sim::CheckpointStore Store(CkptDir, int(CkptRetain));
        std::string CkptPath;
        int Skipped = 0;
        Expected<sim::CheckpointData> C =
            Store.loadNewestValid(&CkptPath, &Skipped);
        if (!C) {
          std::fprintf(stderr, "error: %s\n", C.status().message().c_str());
          return 1;
        }
        if (Status St = S->resumeFrom(*C); !St) {
          std::fprintf(stderr, "error: %s\n", St.message().c_str());
          return 1;
        }
        std::string Note =
            Skipped ? " (" + std::to_string(Skipped) +
                          " corrupt/truncated checkpoint(s) skipped)"
                    : "";
        std::printf("resumed from %s at step %lld%s\n", CkptPath.c_str(),
                    (long long)C->StepCount, Note.c_str());
      }
      S->run();
      // Print the simulator's (sanitized) options, not the raw flags.
      std::printf("simulated %s (%s): %lld cells x %lld steps, t=%.2f ms\n",
                  Name.c_str(),
                  exec::engineConfigName(Model.config()).c_str(),
                  (long long)S->options().NumCells,
                  (long long)S->options().NumSteps, S->time());
      if (Tier != exec::EngineTier::VM) {
        const exec::CompiledModel &RunModel = EnsSim ? *EMod->Model : Model;
        std::printf("engine tier: %s\n",
                    RunModel.usingNativeTier() ? "native" : "vm (fallback)");
      }
      if (S->interrupted())
        std::printf("interrupted at step %lld (%s)%s%s\n",
                    (long long)S->stepsDone(),
                    std::string(sim::stopReasonName(S->stopReason())).c_str(),
                    CkptDir.empty() ? "" : ": final checkpoint written to ",
                    CkptDir.c_str());
      if (S->hasVoltageCoupling())
        std::printf("final Vm[0] = %.6f mV\n", S->vm(0));
      if (TissueSim && CvA >= 0) {
        double CV = TissueSim->conductionVelocity(CvA, CvB);
        if (std::isfinite(CV))
          std::printf("conduction velocity = %.6g cm/ms (nodes %lld..%lld)\n",
                      CV, CvA, CvB);
        else
          std::printf("conduction velocity = n/a (wavefront did not reach "
                      "nodes %lld..%lld)\n",
                      CvA, CvB);
      }
      if (EnsSim) {
        // Partial-result delivery: quarantined members are reported, not
        // fatal — the sweep still exits 0 with every member accounted for.
        std::printf("ensemble members: %lld ok, %lld quarantined\n",
                    (long long)EnsSim->membersOk(),
                    (long long)EnsSim->membersQuarantined());
        if (!MemberStatsPath.empty()) {
          std::ofstream Out(MemberStatsPath,
                            std::ios::binary | std::ios::trunc);
          std::string Ndjson = EnsSim->memberStatsNdjson();
          Out << Ndjson;
          Out.flush();
          if (!Out) {
            std::fprintf(stderr, "error: cannot write member stats to %s\n",
                         MemberStatsPath.c_str());
            return 1;
          }
          std::printf("wrote member stats: %s (%lld members)\n",
                      MemberStatsPath.c_str(),
                      (long long)EnsSim->numMembers());
        }
      }
      std::printf("state checksum = %.9g\n", S->stateChecksum());
      std::printf("guard rails: %s\n", RunGuard ? "on" : "off");
      std::printf("%s", S->report().str().c_str());
      bool Healthy = S->scanIsHealthy();
      std::printf("population health: %s\n", Healthy ? "ok" : "FAULTY");
      if (!Healthy)
        return 2;
      // Distinct recoverable exit for a deadline stop: scripts can tell
      // "ran out of budget, resume later" (3) from "faulty" (2).
      if (S->stopReason() == sim::StopReason::DeadlineExpired)
        return 3;
      return 0;
    }
    if (M == Mode::Info && (WantSnapshots || !EmitArtifactPath.empty() ||
                            !LoadArtifactPath.empty()))
      return 0; // the compile itself was the requested action
  }

  DiagnosticEngine Diags;
  auto Info = easyml::compileModelInfo(Name, Source, Diags);
  std::fprintf(stderr, "%s", Diags.str().c_str());
  if (!Info)
    return 1;

  if (M == Mode::Info) {
    std::printf("model %s\n", Info->Name.c_str());
    std::printf("  state variables (%zu):\n", Info->StateVars.size());
    for (const auto &SV : Info->StateVars)
      std::printf("    %-16s init=%-12s method=%s\n", SV.Name.c_str(),
                  formatDouble(SV.Init).c_str(),
                  std::string(integMethodName(SV.Method)).c_str());
    std::printf("  externals (%zu):\n", Info->Externals.size());
    for (const auto &Ext : Info->Externals)
      std::printf("    %-16s %s%s\n", Ext.Name.c_str(),
                  Ext.IsRead ? "read " : "", Ext.IsComputed ? "computed" : "");
    std::printf("  parameters (%zu):\n", Info->Params.size());
    for (const auto &P : Info->Params)
      std::printf("    %-16s = %s\n", P.Name.c_str(),
                  formatDouble(P.DefaultValue).c_str());
    for (const auto &Lut : Info->Luts)
      std::printf("  lookup table on %s: [%g, %g] step %g (%d rows)\n",
                  Lut.VarName.c_str(), Lut.Lo, Lut.Hi, Lut.Step,
                  Lut.numRows());
    std::printf("  distinct ops in inlined expressions: %zu\n",
                Info->countDistinctOps());
    return 0;
  }

  if (M == Mode::Program) {
    codegen::ModelProgram P =
        codegen::buildModelProgram(*Info, EnableLuts);
    for (size_t I = 0; I != P.Info.StateVars.size(); ++I)
      std::printf("%s_new = %s\n\n", P.Info.StateVars[I].Name.c_str(),
                  easyml::printExpr(*P.StateUpdates[I]).c_str());
    for (size_t I = 0; I != P.Info.Externals.size(); ++I)
      if (P.ExternalUpdates[I])
        std::printf("%s = %s\n\n", P.Info.Externals[I].Name.c_str(),
                    easyml::printExpr(*P.ExternalUpdates[I]).c_str());
    return 0;
  }

  if (M == Mode::Luts) {
    codegen::ModelProgram P = codegen::buildModelProgram(*Info, EnableLuts);
    for (const codegen::LutTablePlan &T : P.Luts.Tables) {
      std::printf("table on %s: [%g, %g] step %g, %zu columns\n",
                  T.Spec.VarName.c_str(), T.Spec.Lo, T.Spec.Hi,
                  T.Spec.Step, T.Columns.size());
      for (size_t C = 0; C != T.Columns.size(); ++C)
        std::printf("  col %2zu: %s\n", C,
                    easyml::printExpr(*T.Columns[C]).c_str());
    }
    return 0;
  }

  codegen::CodeGenOptions Options;
  Options.Layout = Layout;
  Options.AoSoABlockWidth = Width;
  Options.EnableLuts = EnableLuts;
  Options.RunPasses = RunPasses;
  Options.PassPipeline = PassesSpec;
  codegen::GeneratedKernel K = codegen::generateKernel(*Info, Options);
  if (!K.PipelineStatus) {
    std::fprintf(stderr, "error: %s\n", K.PipelineStatus.message().c_str());
    return 1;
  }
  StatsOut.setPassStats(K.PassStats);

  if (M == Mode::IR) {
    std::printf("%s", ir::printOp(K.ScalarFunc).c_str());
    return 0;
  }
  ir::Operation *Func = K.ScalarFunc;
  if (M == Mode::VectorIR || Layout == codegen::StateLayout::AoSoA)
    Func = codegen::vectorizeKernel(K, Width);
  if (!K.PipelineStatus) {
    std::fprintf(stderr, "error: %s\n", K.PipelineStatus.message().c_str());
    return 1;
  }
  if (M == Mode::VectorIR) {
    std::printf("%s", ir::printOp(Func).c_str());
    return 0;
  }
  exec::BcProgram P = exec::compileToBytecode(K, Func);
  std::printf("%s", P.str().c_str());
  std::printf("\nflops/cell=%.0f load-bytes/cell=%.0f "
              "store-bytes/cell=%.0f OI=%.3f\n",
              P.Counts.FlopsPerCell, P.Counts.LoadBytesPerCell,
              P.Counts.StoreBytesPerCell,
              P.Counts.operationalIntensity());
  return 0;
}
