//===- limpetd.cpp - simulation-as-a-service daemon -----------------------===//
//
// Long-lived job server over the limpet runtime: accepts simulation jobs
// (model + engine configuration + protocol) as newline-delimited JSON on
// a Unix domain socket, multiplexes them over the shared thread pool
// with admission control, per-tenant fairness, deadlines and cooperative
// cancellation, and journals every accepted job so a killed daemon
// replays unfinished work from its newest valid checkpoint on restart.
// See docs/DAEMON.md for the protocol and policies; limpetctl is the
// matching client.
//
//   limpetd --socket /tmp/limpetd.sock --state-dir /var/lib/limpetd
//
//===----------------------------------------------------------------------===//

#include "daemon/Server.h"
#include "support/Signals.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

using namespace limpet;

static void printUsage() {
  std::printf(
      "usage: limpetd --socket PATH --state-dir DIR [options]\n"
      "  --socket PATH       Unix socket to listen on (required)\n"
      "  --state-dir DIR     journal + per-job checkpoints (required)\n"
      "  --runners N         concurrent job runner threads (default 2)\n"
      "  --sim-threads N     stepping threads per job (default 2)\n"
      "  --max-queue N       bounded queue depth (default 16)\n"
      "  --tenant-running N  running jobs per tenant (default 2)\n"
      "  --tenant-inflight N queued+running jobs per tenant (default 8)\n"
      "  --checkpoint-every N  default checkpoint cadence in steps for\n"
      "                      jobs that do not set one (default 10000)\n"
      "\n"
      "SIGINT/SIGTERM drain cleanly: running jobs stop at their next step\n"
      "boundary with a final checkpoint and replay on the next start.\n"
      "SIGKILL loses nothing accepted: the journal replays it.\n");
}

int main(int argc, char **argv) {
  daemon::Server::Options O;

  auto valued = [&](const std::string &Arg, int &I, const char *Flag,
                    std::string &Out) {
    size_t N = std::strlen(Flag);
    if (Arg.compare(0, N, Flag) == 0 && Arg.size() > N && Arg[N] == '=') {
      Out = Arg.substr(N + 1);
      return true;
    }
    if (Arg == Flag && I + 1 < argc) {
      Out = argv[++I];
      return true;
    }
    return false;
  };

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    std::string Val;
    if (Arg == "--help" || Arg == "-h") {
      printUsage();
      return 0;
    } else if (valued(Arg, I, "--socket", Val))
      O.SocketPath = Val;
    else if (valued(Arg, I, "--state-dir", Val))
      O.StateDir = Val;
    else if (valued(Arg, I, "--runners", Val))
      O.Runners = unsigned(std::atoi(Val.c_str()));
    else if (valued(Arg, I, "--sim-threads", Val))
      O.SimThreads = unsigned(std::atoi(Val.c_str()));
    else if (valued(Arg, I, "--max-queue", Val))
      O.Limits.MaxQueued = size_t(std::atoll(Val.c_str()));
    else if (valued(Arg, I, "--tenant-running", Val))
      O.Limits.PerTenantRunning = std::atoi(Val.c_str());
    else if (valued(Arg, I, "--tenant-inflight", Val))
      O.Limits.PerTenantInFlight = std::atoi(Val.c_str());
    else if (valued(Arg, I, "--checkpoint-every", Val))
      O.DefaultCheckpointEvery = std::atoll(Val.c_str());
    else {
      std::fprintf(stderr, "error: unknown flag '%s'\n", Arg.c_str());
      printUsage();
      return 1;
    }
  }
  if (O.SocketPath.empty() || O.StateDir.empty()) {
    std::fprintf(stderr, "error: --socket and --state-dir are required\n");
    printUsage();
    return 1;
  }

  // One place touches signal disposition: SIGINT/SIGTERM set the
  // shutdown flag the accept loop and every Simulator poll, SIGPIPE is
  // ignored so vanished clients surface as send() errors. Previous
  // handlers are restored when main returns.
  support::ScopedSignalHandlers Signals(/*IgnorePipe=*/true);

  daemon::Server Server(O);
  if (Status S = Server.start(); !S) {
    std::fprintf(stderr, "error: %s\n", S.message().c_str());
    return 1;
  }
  if (Server.replayedJobs())
    std::fprintf(stderr, "limpetd: replaying %zu unfinished job(s)\n",
                 Server.replayedJobs());
  std::fprintf(stderr, "limpetd: listening on %s\n", O.SocketPath.c_str());
  int Rc = Server.serve();
  std::fprintf(stderr, "limpetd: drained, exiting\n");
  return Rc;
}
