//===- limpetctl.cpp - limpetd control client -----------------------------===//
//
// Thin NDJSON client for the limpetd daemon (docs/DAEMON.md): submits
// jobs, streams their events, cancels, polls status, and drives the
// daemon smoke harness. One request verb per invocation:
//
//   limpetctl --socket S submit --model OHara --steps 2000 --wait
//   limpetctl --socket S cancel --id 3
//   limpetctl --socket S wait --id 3
//   limpetctl --socket S status [--id N] | stats [--tenant T]
//   limpetctl --socket S ping | shutdown
//
// Exit codes make terminal states scriptable: 0 finished/ok, 3 rejected,
// 4 failed, 5 cancelled, 6 expired, 7 shed, 1 protocol/connection error.
//
//===----------------------------------------------------------------------===//

#include "daemon/Json.h"
#include "daemon/Protocol.h"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#ifndef _WIN32
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#endif

using namespace limpet;
using namespace limpet::daemon;

namespace {

void printUsage() {
  std::printf(
      "usage: limpetctl --socket PATH <verb> [options]\n"
      "verbs:\n"
      "  submit   --model NAME [--cells N] [--steps N] [--dt X]\n"
      "           [--tenant T] [--priority P] [--timeout-sec X]\n"
      "           [--checkpoint-every N] [--progress-every N]\n"
      "           [--no-guard] [--preset baseline|limpetmlir|autovec]\n"
      "           [--width N|auto] [--layout aos|soa|aosoa]\n"
      "           [--engine vm|native|auto] [--autotune] [--wait]\n"
      "           [--tissue NX[xNY]] [--dx D] [--sigma S]\n"
      "           [--diffusion ftcs|cn] [--stim PROTO]\n"
      "           [--sweep EXPR] [--member-cells N]\n"
      "  cancel   --id N\n"
      "  wait     --id N      poll until the job is terminal\n"
      "  status   [--id N]\n"
      "  stats    [--tenant T]\n"
      "  ping | shutdown\n"
      "connection:\n"
      "  --retry N            retry a refused connect up to N times with\n"
      "                       exponential backoff + jitter (daemon restart\n"
      "                       windows; default 0 = fail on the first error)\n"
      "  --connect-timeout S  keep retrying the connect for up to S seconds\n"
      "                       (implies retrying even with --retry 0)\n"
      "ensemble:\n"
      "  --sweep EXPR         submit a fault-isolated parameter sweep\n"
      "                       ('gK=0.1:0.5:5;gNa=7,11' grid grammar); the\n"
      "                       terminal event reports members_ok /\n"
      "                       members_quarantined (docs/ENSEMBLE.md)\n"
      "  --member-cells N     cells per sweep member (default 1)\n");
}

#ifndef _WIN32

/// Blocking line-oriented client connection.
class Client {
public:
  ~Client() {
    if (Fd >= 0)
      ::close(Fd);
  }

  bool connect(const std::string &Path) {
    sockaddr_un Addr{};
    if (Path.size() >= sizeof(Addr.sun_path))
      return false;
    Fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (Fd < 0)
      return false;
    Addr.sun_family = AF_UNIX;
    std::strncpy(Addr.sun_path, Path.c_str(), sizeof(Addr.sun_path) - 1);
    if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) !=
        0) {
      ::close(Fd);
      Fd = -1;
      return false;
    }
    return true;
  }

  bool sendLine(const std::string &Line) {
    std::string Framed = Line + "\n";
    size_t Off = 0;
    while (Off < Framed.size()) {
      ssize_t N = ::send(Fd, Framed.data() + Off, Framed.size() - Off,
                         MSG_NOSIGNAL);
      if (N < 0) {
        if (errno == EINTR)
          continue;
        return false;
      }
      Off += size_t(N);
    }
    return true;
  }

  /// Reads one newline-terminated line; false on EOF/error.
  bool readLine(std::string &Out) {
    size_t Nl;
    while ((Nl = Buf.find('\n')) == std::string::npos) {
      char Tmp[4096];
      ssize_t N = ::recv(Fd, Tmp, sizeof(Tmp), 0);
      if (N < 0 && errno == EINTR)
        continue;
      if (N <= 0)
        return false;
      Buf.append(Tmp, size_t(N));
    }
    Out = Buf.substr(0, Nl);
    Buf.erase(0, Nl + 1);
    return true;
  }

private:
  int Fd = -1;
  std::string Buf;
};

/// Connects with bounded retries: exponential backoff (25 ms doubling to
/// a 1 s cap) with +-25% jitter, so a fleet of clients waiting out a
/// daemon restart window does not reconnect in lockstep. Retries continue
/// while either budget remains: up to \p MaxRetries extra attempts, or
/// until the \p TimeoutSec wall-clock budget expires (TimeoutSec <= 0 =
/// attempt budget only).
bool connectWithRetry(Client &C, const std::string &Path, int MaxRetries,
                      double TimeoutSec) {
  using Clock = std::chrono::steady_clock;
  Clock::time_point Deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(
                             TimeoutSec > 0 ? TimeoutSec : 0));
  unsigned Seed =
      unsigned(::getpid()) ^
      unsigned(Clock::now().time_since_epoch().count());
  double DelayMs = 25;
  for (int Attempt = 0;; ++Attempt) {
    if (C.connect(Path))
      return true;
    if (Attempt >= MaxRetries &&
        !(TimeoutSec > 0 && Clock::now() < Deadline))
      return false;
    if (TimeoutSec > 0 && Clock::now() >= Deadline)
      return false;
    // rand_r keeps the jitter per-process deterministic-free without
    // dragging in <random>; +-25% around the current backoff step.
    double Jitter = 0.75 + 0.5 * (double(rand_r(&Seed)) / double(RAND_MAX));
    double SleepMs = DelayMs * Jitter;
    if (TimeoutSec > 0) {
      double LeftMs =
          std::chrono::duration<double, std::milli>(Deadline - Clock::now())
              .count();
      if (LeftMs <= 0)
        return false;
      if (SleepMs > LeftMs)
        SleepMs = LeftMs;
    }
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(SleepMs));
    DelayMs = DelayMs * 2 < 1000 ? DelayMs * 2 : 1000;
  }
}

/// Exit code for a terminal job state (scriptable by the smoke harness).
int exitCodeFor(const std::string &State) {
  if (State == "finished")
    return 0;
  if (State == "failed")
    return 4;
  if (State == "cancelled")
    return 5;
  if (State == "expired")
    return 6;
  if (State == "shed")
    return 7;
  return 1;
}

bool isTerminalState(const std::string &State) {
  return State == "finished" || State == "failed" || State == "cancelled" ||
         State == "expired" || State == "shed";
}

/// Polls `status` for one job until it reaches a terminal state.
int waitForJob(Client &C, uint64_t Id) {
  JsonValue Req = JsonValue::object();
  Req.set("verb", JsonValue::string("status"));
  Req.set("id", JsonValue::number(Id));
  std::string ReqLine = Req.str();
  while (true) {
    if (!C.sendLine(ReqLine))
      return 1;
    std::string Line;
    if (!C.readLine(Line))
      return 1;
    Expected<JsonValue> Resp = JsonValue::parse(Line);
    if (!Resp)
      return 1;
    if (Resp->stringOr("event", "") == "error") {
      std::fprintf(stderr, "error: %s\n",
                   Resp->stringOr("error", "?").c_str());
      return 1;
    }
    const JsonValue *Job = Resp->find("job");
    std::string State = Job ? Job->stringOr("state", "") : "";
    if (isTerminalState(State)) {
      std::printf("%s\n", Job->str().c_str());
      return exitCodeFor(State);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
}

#endif // !_WIN32

} // namespace

int main(int argc, char **argv) {
#ifdef _WIN32
  (void)argc;
  (void)argv;
  std::fprintf(stderr, "error: limpetctl requires POSIX sockets\n");
  return 1;
#else
  std::string Socket, Verb;
  JsonValue Req = JsonValue::object();
  JsonValue Cfg = JsonValue::object();
  bool Wait = false;
  uint64_t WaitId = 0;
  int ConnectRetries = 0;
  double ConnectTimeoutSec = 0;

  auto valued = [&](const std::string &Arg, int &I, const char *Flag,
                    std::string &Out) {
    size_t N = std::strlen(Flag);
    if (Arg.compare(0, N, Flag) == 0 && Arg.size() > N && Arg[N] == '=') {
      Out = Arg.substr(N + 1);
      return true;
    }
    if (Arg == Flag && I + 1 < argc) {
      Out = argv[++I];
      return true;
    }
    return false;
  };

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    std::string Val;
    if (Arg == "--help" || Arg == "-h") {
      printUsage();
      return 0;
    } else if (valued(Arg, I, "--socket", Val))
      Socket = Val;
    else if (valued(Arg, I, "--model", Val))
      Req.set("model", JsonValue::string(Val));
    else if (valued(Arg, I, "--tenant", Val))
      Req.set("tenant", JsonValue::string(Val));
    else if (valued(Arg, I, "--cells", Val))
      Req.set("cells", JsonValue::number(double(std::atoll(Val.c_str()))));
    else if (valued(Arg, I, "--steps", Val))
      Req.set("steps", JsonValue::number(double(std::atoll(Val.c_str()))));
    else if (valued(Arg, I, "--dt", Val))
      Req.set("dt", JsonValue::number(std::atof(Val.c_str())));
    else if (valued(Arg, I, "--priority", Val))
      Req.set("priority", JsonValue::number(double(std::atoi(Val.c_str()))));
    else if (valued(Arg, I, "--timeout-sec", Val))
      Req.set("timeout_sec", JsonValue::number(std::atof(Val.c_str())));
    else if (valued(Arg, I, "--checkpoint-every", Val))
      Req.set("checkpoint_every",
              JsonValue::number(double(std::atoll(Val.c_str()))));
    else if (valued(Arg, I, "--progress-every", Val))
      Req.set("progress_every",
              JsonValue::number(double(std::atoll(Val.c_str()))));
    else if (valued(Arg, I, "--tissue", Val)) {
      long long NX = 0, NY = 1;
      char Sep = 0;
      int N = std::sscanf(Val.c_str(), "%lld%c%lld", &NX, &Sep, &NY);
      if (N == 1)
        NY = 1;
      else if (N != 3 || (Sep != 'x' && Sep != 'X')) {
        std::fprintf(stderr,
                     "error: bad --tissue spec '%s' (want NX or NXxNY)\n",
                     Val.c_str());
        return 1;
      }
      Req.set("tissue_nx", JsonValue::number(double(NX)));
      Req.set("tissue_ny", JsonValue::number(double(NY)));
    } else if (valued(Arg, I, "--dx", Val))
      Req.set("tissue_dx", JsonValue::number(std::atof(Val.c_str())));
    else if (valued(Arg, I, "--sigma", Val))
      Req.set("tissue_sigma", JsonValue::number(std::atof(Val.c_str())));
    else if (valued(Arg, I, "--diffusion", Val))
      Req.set("tissue_method", JsonValue::string(Val));
    else if (valued(Arg, I, "--stim", Val))
      Req.set("tissue_stim", JsonValue::string(Val));
    else if (valued(Arg, I, "--sweep", Val))
      Req.set("ensemble_sweep", JsonValue::string(Val));
    else if (valued(Arg, I, "--member-cells", Val))
      Req.set("ensemble_cells_per",
              JsonValue::number(double(std::atoll(Val.c_str()))));
    else if (valued(Arg, I, "--retry", Val))
      ConnectRetries = std::atoi(Val.c_str());
    else if (valued(Arg, I, "--connect-timeout", Val))
      ConnectTimeoutSec = std::atof(Val.c_str());
    else if (valued(Arg, I, "--id", Val)) {
      WaitId = uint64_t(std::atoll(Val.c_str()));
      Req.set("id", JsonValue::number(double(WaitId)));
    } else if (valued(Arg, I, "--preset", Val))
      Cfg.set("preset", JsonValue::string(Val));
    else if (valued(Arg, I, "--width", Val)) {
      if (Val == "auto")
        Cfg.set("width", JsonValue::string("auto"));
      else
        Cfg.set("width", JsonValue::number(double(std::atoi(Val.c_str()))));
    } else if (valued(Arg, I, "--layout", Val))
      Cfg.set("layout", JsonValue::string(Val));
    else if (valued(Arg, I, "--engine", Val))
      Req.set("engine", JsonValue::string(Val));
    else if (Arg == "--autotune")
      Req.set("autotune", JsonValue::boolean(true));
    else if (Arg == "--no-guard")
      Req.set("guard", JsonValue::boolean(false));
    else if (Arg == "--wait")
      Wait = true;
    else if (!Arg.empty() && Arg[0] != '-' && Verb.empty())
      Verb = Arg;
    else {
      std::fprintf(stderr, "error: unknown argument '%s'\n", Arg.c_str());
      printUsage();
      return 1;
    }
  }
  if (Socket.empty() || Verb.empty()) {
    std::fprintf(stderr, "error: --socket and a verb are required\n");
    printUsage();
    return 1;
  }
  if (!Cfg.members().empty())
    Req.set("config", std::move(Cfg));

  Client C;
  if (!connectWithRetry(C, Socket, ConnectRetries, ConnectTimeoutSec)) {
    std::fprintf(stderr, "error: cannot connect to '%s'\n", Socket.c_str());
    return 1;
  }

  if (Verb == "wait") {
    if (!WaitId) {
      std::fprintf(stderr, "error: wait needs --id\n");
      return 1;
    }
    return waitForJob(C, WaitId);
  }

  Req.set("verb", JsonValue::string(Verb));
  if (!C.sendLine(Req.str()))
    return 1;

  uint64_t SubmittedId = 0;
  while (true) {
    std::string Line;
    if (!C.readLine(Line)) {
      // EOF before a terminal event: with --wait that is a failure (the
      // daemon died); otherwise it just ends the stream.
      return Wait ? 1 : 0;
    }
    std::printf("%s\n", Line.c_str());
    std::fflush(stdout);
    Expected<JsonValue> Resp = JsonValue::parse(Line);
    if (!Resp)
      return 1;
    std::string Event = Resp->stringOr("event", "");
    if (Event == "rejected")
      return 3;
    if (Event == "error")
      return 1;
    if (Verb != "submit")
      return 0; // single-response verbs
    if (Event == "accepted") {
      SubmittedId = uint64_t(Resp->numberOr("id", 0));
      if (!Wait)
        return 0;
      continue;
    }
    if (isTerminalState(Event) &&
        uint64_t(Resp->numberOr("id", 0)) == SubmittedId) {
      // Ensemble partial-result summary, human-readable next to the raw
      // NDJSON: "997/1000 ok, 3 quarantined".
      if (const JsonValue *Ok = Resp->find("members_ok")) {
        int64_t NOk = int64_t(Ok->asNumber());
        int64_t NQ = Resp->intOr("members_quarantined", 0);
        std::fprintf(stderr, "members: %lld/%lld ok, %lld quarantined\n",
                     (long long)NOk, (long long)(NOk + NQ), (long long)NQ);
      }
      return exitCodeFor(Event);
    }
  }
#endif
}
