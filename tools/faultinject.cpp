//===- faultinject.cpp - Fault-injection harness for the guard rails ------===//
//
// Deliberately breaks running simulations — NaNs injected into state,
// +Inf into Vm, corrupted LUT rows, pathological dt and parameters — and
// verifies that every rung of the Simulator's recovery ladder fires and
// leaves the population healthy (docs/ROBUSTNESS.md). Exits nonzero when
// any scenario's recovery or RunReport accounting does not match the
// injections, so it doubles as an acceptance check:
//
//   faultinject            run every scenario
//   faultinject nan-state  run one scenario
//   faultinject --list     list scenarios
//
//===----------------------------------------------------------------------===//

#include "compiler/CompileCache.h"
#include "compiler/CompilerDriver.h"
#include "compiler/Serialize.h"
#include "daemon/JobQueue.h"
#include "support/Telemetry.h"
#include "daemon/Journal.h"
#include "easyml/Sema.h"
#include "models/Registry.h"
#include "sim/Checkpoint.h"
#include "sim/Ensemble.h"
#include "sim/Simulator.h"
#include "sim/TissueSimulator.h"
#include "support/FailPoint.h"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <optional>
#include <string>
#include <unistd.h>

using namespace limpet;
using namespace limpet::exec;
using namespace limpet::sim;

namespace {

double quietNaN() { return std::numeric_limits<double>::quiet_NaN(); }

std::optional<CompiledModel> compileSuiteModel(const char *Name,
                                               EngineConfig Cfg) {
  const models::ModelEntry *M = models::findModel(Name);
  if (!M) {
    std::fprintf(stderr, "error: suite model '%s' not found\n", Name);
    return std::nullopt;
  }
  // Through the driver: repeated scenarios on the same (model, config)
  // hit the in-process compile cache instead of re-running codegen.
  compiler::DriverOptions Opts;
  Opts.Config = std::move(Cfg);
  compiler::CompilerDriver Driver(std::move(Opts));
  compiler::CompileResult R = Driver.compileEntry(*M);
  if (!R) {
    std::fprintf(stderr, "error: compilation failed: %s\n",
                 R.Err.message().c_str());
    return std::nullopt;
  }
  return std::move(R.Model);
}

/// The common protocol: a paced population small enough that every
/// scenario runs in well under a second, stepped long enough to cross
/// many scan windows.
SimOptions guardedOpts(int64_t Cells = 32, int64_t Steps = 200) {
  SimOptions Opts;
  Opts.NumCells = Cells;
  Opts.NumSteps = Steps;
  Opts.StimPeriod = 20.0;
  Opts.Guard.Enabled = true;
  return Opts;
}

bool check(bool Cond, const char *What) {
  if (!Cond)
    std::printf("  FAIL: %s\n", What);
  return Cond;
}

bool populationFinite(const Simulator &S) {
  for (int64_t C = 0; C != S.options().NumCells; ++C)
    if (!std::isfinite(S.vm(C)))
      return false;
  return true;
}

//===----------------------------------------------------------------------===//
// Scenarios
//===----------------------------------------------------------------------===//

/// A single NaN written into one cell's state: rollback plus dt-halving
/// re-integration must heal it with no cell degraded or frozen.
bool scenarioNanState() {
  auto M = compileSuiteModel("HodgkinHuxley", EngineConfig::limpetMLIR(4));
  if (!M)
    return false;
  Simulator S(*M, guardedOpts());
  bool Fired = false;
  S.setFaultInjector([&](Simulator &Sim) {
    if (!Fired && Sim.stepsDone() == 40) {
      Fired = true;
      Sim.pokeState(/*Cell=*/3, /*Sv=*/0, quietNaN());
    }
  });
  S.run();
  const RunReport &R = S.report();
  std::printf("%s", R.str().c_str());
  bool Ok = check(Fired, "injector fired");
  Ok &= check(S.scanIsHealthy(), "population healthy after recovery");
  Ok &= check(R.FaultEvents == 1, "exactly one fault event");
  Ok &= check(R.FaultyCells == 1, "exactly one faulty cell observed");
  Ok &= check(R.Retries >= 1 && R.Substeps > 0, "healed by sub-stepping");
  Ok &= check(R.CellsDegraded == 0 && R.CellsFrozen == 0,
              "no degradation needed");
  Ok &= check(S.cellMode(3) == CellMode::Normal, "victim back to normal");
  return Ok;
}

/// A single +Inf written into Vm: same transient class as nan-state.
bool scenarioInfVm() {
  auto M = compileSuiteModel("HodgkinHuxley", EngineConfig::limpetMLIR(4));
  if (!M)
    return false;
  int VmIdx = M->info().externalIndex("Vm");
  if (!check(VmIdx >= 0, "model has a Vm external"))
    return false;
  Simulator S(*M, guardedOpts());
  bool Fired = false;
  S.setFaultInjector([&](Simulator &Sim) {
    if (!Fired && Sim.stepsDone() == 17) {
      Fired = true;
      Sim.pokeExternal(size_t(VmIdx), /*Cell=*/7,
                       std::numeric_limits<double>::infinity());
    }
  });
  S.run();
  const RunReport &R = S.report();
  std::printf("%s", R.str().c_str());
  bool Ok = check(Fired, "injector fired");
  Ok &= check(S.scanIsHealthy(), "population healthy after recovery");
  Ok &= check(R.FaultEvents == 1 && R.FaultyCells == 1,
              "report matches the single injection");
  Ok &= check(R.CellsFrozen == 0, "no cell frozen");
  return Ok;
}

/// A NaN re-injected into the same cell after every step: no amount of
/// re-integration heals it, so the ladder must end with that one cell
/// frozen while every other cell keeps evolving normally.
bool scenarioPersistent() {
  auto M = compileSuiteModel("HodgkinHuxley", EngineConfig::limpetMLIR(4));
  if (!M)
    return false;
  const int64_t Victim = 5;
  Simulator S(*M, guardedOpts());
  S.setFaultInjector([&](Simulator &Sim) {
    Sim.pokeState(Victim, /*Sv=*/1, quietNaN());
  });
  S.run();

  // Reference: the same guarded protocol with no injection.
  Simulator Clean(*M, guardedOpts());
  Clean.run();

  const RunReport &R = S.report();
  std::printf("%s", R.str().c_str());
  bool Ok = check(S.scanIsHealthy(), "population healthy after recovery");
  Ok &= check(S.cellMode(Victim) == CellMode::Frozen, "victim frozen");
  Ok &= check(R.CellsFrozen == 1, "exactly one cell frozen");
  bool NeighborsExact = true;
  for (int64_t C = 0; C != S.options().NumCells; ++C)
    if (C != Victim)
      NeighborsExact &= S.vm(C) == Clean.vm(C);
  Ok &= check(NeighborsExact,
              "neighbors bit-identical to an undisturbed guarded run");
  return Ok;
}

/// Every row of every LUT poisoned with NaN: re-integration would read
/// the same poisoned rows, so the ladder must skip straight to the
/// scalar-exact (no-LUT) fallback for the whole population.
bool scenarioLutCorrupt() {
  auto M = compileSuiteModel("HodgkinHuxley", EngineConfig::limpetMLIR(4));
  if (!M)
    return false;
  SimOptions Opts = guardedOpts(/*Cells=*/16, /*Steps=*/64);
  Simulator S(*M, Opts);
  runtime::LutTableSet &Luts = S.mutableLuts();
  if (!check(!Luts.empty(), "model has LUT tables to corrupt"))
    return false;
  for (runtime::LutTable &T : Luts.Tables)
    for (int Row = 0; Row != T.rows(); ++Row)
      for (int Col = 0; Col != T.cols(); ++Col)
        T.at(Row, Col) = quietNaN();
  S.run();
  const RunReport &R = S.report();
  std::printf("%s", R.str().c_str());
  bool Ok = check(S.scanIsHealthy(), "population healthy after recovery");
  Ok &= check(R.CellsDegraded == Opts.NumCells,
              "whole population degraded to the scalar-exact path");
  Ok &= check(R.Retries == 0,
              "dt ladder skipped for an unhealable table fault");
  Ok &= check(R.CellsFrozen == 0, "no cell frozen");
  Ok &= check(populationFinite(S), "population still evolving");
  return Ok;
}

/// dt two orders of magnitude past the stability limit: the integration
/// blows up every window; the guard must keep the run finite (sub-steps
/// where they help, frozen cells where they don't) instead of letting
/// the population diverge.
bool scenarioExtremeDt() {
  auto M = compileSuiteModel("HodgkinHuxley", EngineConfig::baseline());
  if (!M)
    return false;
  SimOptions Opts = guardedOpts(/*Cells=*/8, /*Steps=*/64);
  Opts.Dt = 1.0; // HH forward-Euler is stable around 0.01-0.02 ms
  Simulator S(*M, Opts);
  S.run();
  const RunReport &R = S.report();
  std::printf("%s", R.str().c_str());
  bool Ok = check(S.scanIsHealthy(), "population healthy after recovery");
  Ok &= check(R.FaultEvents > 0, "instability detected");
  Ok &= check(R.Retries > 0, "dt ladder attempted");
  Ok &= check(populationFinite(S), "population finite at the end");
  Ok &= check(S.stepsDone() == Opts.NumSteps, "run completed");
  return Ok;
}

/// A pathological parameter (1e8x sodium conductance): the model is
/// genuinely broken, so cells end up frozen — but the run completes and
/// says so, instead of asserting or emitting NaNs.
bool scenarioExtremeParam() {
  auto M = compileSuiteModel("HodgkinHuxley", EngineConfig::limpetMLIR(4));
  if (!M)
    return false;
  SimOptions Opts = guardedOpts(/*Cells=*/8, /*Steps=*/64);
  Simulator S(*M, Opts);
  Status St = S.setParam("gNa", 1.2e10);
  if (!check(St.isOk(), "setParam accepted a finite (if absurd) value"))
    return false;
  S.run();
  const RunReport &R = S.report();
  std::printf("%s", R.str().c_str());
  bool Ok = check(S.scanIsHealthy(), "population healthy after recovery");
  Ok &= check(R.FaultEvents > 0, "blow-up detected");
  Ok &= check(populationFinite(S), "population finite at the end");
  Ok &= check(S.stepsDone() == Opts.NumSteps, "run completed");
  return Ok;
}

/// A persistent NaN under a sharded (multi-threaded) stepping loop:
/// recovery rollback/fallback/freeze operates on StateBuffer checkpoints
/// shared across shards, and the result must be bit-identical to the
/// same injection handled single-threaded — threading must change
/// nothing about where the ladder lands.
bool scenarioSharded() {
  auto M = compileSuiteModel("HodgkinHuxley", EngineConfig::limpetMLIR(4));
  if (!M)
    return false;
  const int64_t Victim = 11;
  struct Outcome {
    std::vector<double> Vm;
    RunReport Report;
    bool Healthy = false;
    bool VictimFrozen = false;
    unsigned Shards = 0;
  };
  auto RunWith = [&](unsigned Threads) {
    SimOptions Opts = guardedOpts(/*Cells=*/64, /*Steps=*/200);
    Opts.NumThreads = Threads;
    Simulator S(*M, Opts);
    S.setFaultInjector([&](Simulator &Sim) {
      Sim.pokeState(Victim, /*Sv=*/1, quietNaN());
    });
    S.run();
    Outcome Out;
    for (int64_t C = 0; C != Opts.NumCells; ++C)
      Out.Vm.push_back(S.vm(C));
    Out.Report = S.report();
    Out.Healthy = S.scanIsHealthy();
    Out.VictimFrozen = S.cellMode(Victim) == CellMode::Frozen;
    Out.Shards = S.scheduler().numShards();
    return Out;
  };
  Outcome Serial = RunWith(1);
  Outcome Sharded2 = RunWith(2);
  Outcome Sharded4 = RunWith(4);
  std::printf("%s", Sharded4.Report.str().c_str());
  bool Ok = check(Sharded4.Shards == 4, "4 shards in play");
  Ok &= check(Sharded4.Healthy, "population healthy after recovery");
  Ok &= check(Sharded4.VictimFrozen, "victim frozen under threading");
  Ok &= check(Sharded4.Report.CellsFrozen == 1, "exactly one cell frozen");
  Ok &= check(Sharded2.Vm == Serial.Vm,
              "2-shard run bit-identical to single-threaded");
  Ok &= check(Sharded4.Vm == Serial.Vm,
              "4-shard run bit-identical to single-threaded");
  return Ok;
}

/// One pathological parameter point inside a batched sweep: the
/// member-local ladder must quarantine exactly that member while every
/// healthy member's trajectory stays bit-identical to a sweep in which
/// the poison member ran a sane point — partial results, never a lost
/// sweep (docs/ENSEMBLE.md).
bool scenarioEnsembleQuarantine() {
  const models::ModelEntry *ME = models::findModel("HodgkinHuxley");
  if (!check(ME != nullptr, "suite model present"))
    return false;
  DiagnosticEngine Diags;
  auto Info = easyml::compileModelInfo(ME->Name, ME->Source, Diags);
  if (!check(bool(Info), "frontend accepts the suite model"))
    return false;

  auto BuildAndRun = [&](const char *Sweep, std::optional<EnsembleRunner> &S,
                         std::optional<EnsembleModel> &EM) {
    Expected<EnsembleSpec> Spec =
        EnsembleSpec::fromSweep(Sweep, /*CellsPerMember=*/2);
    if (!check(bool(Spec), "sweep grammar parses"))
      return false;
    Expected<EnsembleModel> Built = buildEnsembleModel(
        *Info, std::move(*Spec), EngineConfig::limpetMLIR(4));
    if (!check(bool(Built), "ensemble model builds"))
      return false;
    EM.emplace(std::move(*Built));
    // NumCells is dictated by the spec; the Cells argument is ignored.
    S.emplace(*EM, guardedOpts(/*Cells=*/0, /*Steps=*/200));
    S->run();
    return true;
  };

  std::optional<EnsembleModel> EM, CleanEM;
  std::optional<EnsembleRunner> S, Clean;
  if (!BuildAndRun("gNa=120,1e9,90,110", S, EM))
    return false;
  std::printf("%s", S->report().str().c_str());
  bool Ok = check(S->stepsDone() == 200, "sweep completed");
  Ok &= check(S->scanIsHealthy(),
              "population healthy (quarantined slice excluded)");
  Ok &= check(S->numMembers() == 4, "four members packed");
  Ok &= check(S->membersQuarantined() == 1 && S->membersOk() == 3,
              "exactly the poison member quarantined");
  Ok &= check(S->memberStatus(1) == MemberStatus::Quarantined,
              "member 1 (gNa=1e9) is the quarantined one");
  std::vector<MemberReport> Reps = S->memberReports();
  Ok &= check(Reps.size() == 4 &&
                  Reps[1].Reason != QuarantineReason::None &&
                  Reps[1].QuarantineStep >= 0,
              "quarantine report carries a reason and a pinned step");

  // Member isolation: the same population with the poison point replaced
  // by a sane one. Members 0, 2, 3 never faulted in either run, so their
  // slices must be bit-identical — the ladder's re-runs touched nothing
  // outside the faulting member's block-aligned range.
  if (!BuildAndRun("gNa=120,100,90,110", Clean, CleanEM))
    return false;
  Ok &= check(Clean->membersQuarantined() == 0, "control sweep all-healthy");
  for (int64_t M : {int64_t(0), int64_t(2), int64_t(3)})
    Ok &= check(S->memberChecksum(M) == Clean->memberChecksum(M),
                "healthy member bit-identical to the control sweep");
  return Ok;
}

//===----------------------------------------------------------------------===//
// Crash-recovery scenarios (durable checkpoint/resume, docs/ROBUSTNESS.md)
//===----------------------------------------------------------------------===//

/// A unique, empty scratch directory for one crash scenario.
std::string freshDir(const char *Tag) {
  std::string Dir = (std::filesystem::temp_directory_path() /
                     ("limpet-crash-" + std::string(Tag) + "-" +
                      std::to_string(::getpid())))
                        .string();
  std::filesystem::remove_all(Dir);
  std::filesystem::create_directories(Dir);
  return Dir;
}

/// Zeroes the wall-clock accumulators, the only nondeterministic fields,
/// so final states of equal simulations compare byte-for-byte.
CheckpointData normalizedCkpt(CheckpointData C) {
  C.Report.ScanSeconds = 0;
  C.Report.RecoverySeconds = 0;
  C.Report.RunSeconds = 0;
  return C;
}

bool finalStatesIdentical(Simulator &A, Simulator &B) {
  return serializeCheckpoint(normalizedCkpt(A.captureCheckpoint())) ==
         serializeCheckpoint(normalizedCkpt(B.captureCheckpoint()));
}

/// Deterministic kill-at-step under the guard rails: a shutdown request
/// lands mid-run, the simulator stops at the next window boundary with a
/// final checkpoint, and a fresh process (simulator) resuming from it
/// finishes bit-identically to a run that was never interrupted.
bool scenarioCkptResume() {
  auto M = compileSuiteModel("HodgkinHuxley", EngineConfig::limpetMLIR(4));
  if (!M)
    return false;
  std::string Dir = freshDir("resume");
  SimOptions Opts = guardedOpts(/*Cells=*/32, /*Steps=*/200);
  Opts.Checkpoint.Dir = Dir;
  Opts.Checkpoint.EveryN = 24;
  clearShutdownRequest();
  Simulator S(*M, Opts);
  S.setFaultInjector([](Simulator &Sim) {
    if (Sim.stepsDone() == 100)
      requestShutdown();
  });
  S.run();
  clearShutdownRequest();
  bool Ok = check(S.interrupted(), "run stopped on the shutdown request");
  Ok &= check(S.stepsDone() < 200, "run stopped early");

  CheckpointStore Store(Dir);
  std::string Path;
  Expected<CheckpointData> C = Store.loadNewestValid(&Path);
  if (!check(bool(C), "final checkpoint loads"))
    return false;
  Ok &= check(C->StepCount == S.stepsDone(),
              "final checkpoint is at the interruption step");

  Simulator Resumed(*M, guardedOpts(/*Cells=*/32, /*Steps=*/200));
  if (!check(Resumed.resumeFrom(*C).isOk(), "resume accepted"))
    return false;
  Resumed.run();
  Simulator Ref(*M, guardedOpts(/*Cells=*/32, /*Steps=*/200));
  Ref.run();
  Ok &= check(Resumed.stepsDone() == 200, "resumed run reached the target");
  Ok &= check(finalStatesIdentical(Resumed, Ref),
              "resumed final state bit-identical to uninterrupted");
  std::filesystem::remove_all(Dir);
  return Ok;
}

/// The newest checkpoint truncated mid-file (a crash on a filesystem
/// without atomic rename): resume must fall back to the next newest and
/// still finish bit-identically.
bool scenarioCkptTruncate() {
  auto M = compileSuiteModel("HodgkinHuxley", EngineConfig::limpetMLIR(4));
  if (!M)
    return false;
  std::string Dir = freshDir("truncate");
  SimOptions Opts = guardedOpts(/*Cells=*/16, /*Steps=*/100);
  Opts.Guard.Enabled = false; // unguarded: cadence lands exactly on EveryN
  Opts.Checkpoint.Dir = Dir;
  Opts.Checkpoint.EveryN = 24;
  Simulator S(*M, Opts);
  S.run();
  CheckpointStore Store(Dir);
  std::vector<std::string> Files = Store.list();
  if (!check(Files.size() == 3, "retention kept 3 rotated checkpoints"))
    return false;
  {
    std::string Bytes;
    (void)compiler::readFileBytes(Files.back(), Bytes);
    std::ofstream(Files.back(), std::ios::binary | std::ios::trunc)
        .write(Bytes.data(), std::streamsize(Bytes.size() / 3));
  }
  int Skipped = 0;
  std::string Path;
  Expected<CheckpointData> C = Store.loadNewestValid(&Path, &Skipped);
  if (!check(bool(C), "fallback checkpoint loads"))
    return false;
  bool Ok = check(Skipped == 1, "exactly the truncated file was skipped");
  Ok &= check(C->StepCount == 72, "fell back to the previous checkpoint");

  SimOptions Plain = guardedOpts(/*Cells=*/16, /*Steps=*/100);
  Plain.Guard.Enabled = false;
  Simulator Resumed(*M, Plain);
  if (!check(Resumed.resumeFrom(*C).isOk(), "resume accepted"))
    return false;
  Resumed.run();
  Simulator Ref(*M, Plain);
  Ref.run();
  Ok &= check(finalStatesIdentical(Resumed, Ref),
              "resumed final state bit-identical to uninterrupted");
  std::filesystem::remove_all(Dir);
  return Ok;
}

/// Checksum corruption in the newest two checkpoints: both must be
/// detected (never misparsed) and resume lands on the oldest valid one.
bool scenarioCkptCorrupt() {
  auto M = compileSuiteModel("HodgkinHuxley", EngineConfig::limpetMLIR(4));
  if (!M)
    return false;
  std::string Dir = freshDir("corrupt");
  SimOptions Opts = guardedOpts(/*Cells=*/16, /*Steps=*/100);
  Opts.Guard.Enabled = false;
  Opts.Checkpoint.Dir = Dir;
  Opts.Checkpoint.EveryN = 24;
  Simulator S(*M, Opts);
  S.run();
  CheckpointStore Store(Dir);
  std::vector<std::string> Files = Store.list();
  if (!check(Files.size() == 3, "retention kept 3 rotated checkpoints"))
    return false;
  for (size_t I = 1; I != 3; ++I) {
    // Flip one payload byte: the FNV-1a checksum must catch it.
    std::string Bytes;
    (void)compiler::readFileBytes(Files[I], Bytes);
    Bytes[Bytes.size() / 2] = char(Bytes[Bytes.size() / 2] ^ 0xff);
    std::ofstream(Files[I], std::ios::binary | std::ios::trunc)
        .write(Bytes.data(), std::streamsize(Bytes.size()));
  }
  int Skipped = 0;
  Expected<CheckpointData> C = Store.loadNewestValid(nullptr, &Skipped);
  if (!check(bool(C), "oldest valid checkpoint loads"))
    return false;
  bool Ok = check(Skipped == 2, "both corrupted files were skipped");
  Ok &= check(C->StepCount == 48, "fell back to the oldest checkpoint");

  SimOptions Plain = guardedOpts(/*Cells=*/16, /*Steps=*/100);
  Plain.Guard.Enabled = false;
  Simulator Resumed(*M, Plain);
  if (!check(Resumed.resumeFrom(*C).isOk(), "resume accepted"))
    return false;
  Resumed.run();
  Simulator Ref(*M, Plain);
  Ref.run();
  Ok &= check(finalStatesIdentical(Resumed, Ref),
              "resumed final state bit-identical to uninterrupted");
  std::filesystem::remove_all(Dir);
  return Ok;
}

/// Stale-model protection: a checkpoint stamped with one source hash must
/// be refused by a driver whose model hashes differently, by a simulator
/// under a different engine configuration, and by a different model — all
/// as recoverable errors that leave the resuming simulator untouched.
bool scenarioCkptStale() {
  auto M = compileSuiteModel("HodgkinHuxley", EngineConfig::limpetMLIR(4));
  if (!M)
    return false;
  SimOptions Opts = guardedOpts(/*Cells=*/8, /*Steps=*/40);
  Opts.Checkpoint.SourceHash = 0xAAAA;
  Simulator S(*M, Opts);
  S.run();
  CheckpointData C = S.captureCheckpoint();

  SimOptions OtherHash = guardedOpts(/*Cells=*/8, /*Steps=*/40);
  OtherHash.Checkpoint.SourceHash = 0xBBBB;
  Simulator Stale(*M, OtherHash);
  double ChecksumBefore = Stale.stateChecksum();
  Status St = Stale.resumeFrom(C);
  bool Ok = check(!St.isOk(), "source-hash mismatch refused");
  Ok &= check(St.message().find("source") != std::string::npos,
              "error names the source mismatch");
  Ok &= check(Stale.stateChecksum() == ChecksumBefore,
              "refused resume left the simulator untouched");

  auto MBase = compileSuiteModel("HodgkinHuxley", EngineConfig::baseline());
  if (!MBase)
    return false;
  Simulator WrongCfg(*MBase, guardedOpts(/*Cells=*/8, /*Steps=*/40));
  Ok &= check(!WrongCfg.resumeFrom(C).isOk(),
              "engine-configuration mismatch refused");

  auto MOther = compileSuiteModel("BeelerReuter", EngineConfig::limpetMLIR(4));
  if (!MOther)
    return false;
  Simulator WrongModel(*MOther, guardedOpts(/*Cells=*/8, /*Steps=*/40));
  Ok &= check(!WrongModel.resumeFrom(C).isOk(), "model mismatch refused");

  Simulator SameHash(*M, Opts);
  Ok &= check(SameHash.resumeFrom(C).isOk(), "matching checkpoint accepted");
  return Ok;
}

/// The disk filling up under the periodic checkpoint writes (the
/// write-enospc fail point runs the production writeFileAtomic error
/// path): durability degrades — the failure is counted, the partial temp
/// file is removed — but the simulation itself keeps stepping, the next
/// write retries at the next boundary, and the newest surviving
/// checkpoint still resumes bit-identically. A persistently full disk
/// (every write failing) still never touches the physiology.
bool scenarioCkptEnospc() {
  auto M = compileSuiteModel("HodgkinHuxley", EngineConfig::limpetMLIR(4));
  if (!M)
    return false;
  std::string Dir = freshDir("ckpt-enospc");
  SimOptions Opts = guardedOpts(/*Cells=*/16, /*Steps=*/200);
  Opts.Guard.Enabled = false; // unguarded: cadence lands exactly on EveryN
  Opts.Checkpoint.Dir = Dir;
  Opts.Checkpoint.EveryN = 24;

  // Probe 1 is the store's writability probe, probe 2 the step-24 write;
  // arming the 3rd fails exactly the step-48 checkpoint.
  uint64_t ErrsBefore =
      telemetry::Registry::instance().value("sim.checkpoint.errors");
  support::armFailPoint("write-enospc", /*Nth=*/3);
  Simulator S(*M, Opts);
  S.run();
  uint64_t Fires = support::failPointFireCount();
  support::disarmFailPoints();

  bool Ok = check(S.stepsDone() == 200, "run completed despite the full disk");
  Ok &= check(!S.interrupted(), "a failed checkpoint never stops the run");
  Ok &= check(populationFinite(S), "population untouched");
  Ok &= check(Fires == 1, "the injection ran the production write path");
  if (telemetry::kEnabled)
    Ok &= check(telemetry::Registry::instance().value(
                    "sim.checkpoint.errors") == ErrsBefore + 1,
                "the failed write was counted");
  bool TmpLeft = false;
  for (const auto &E : std::filesystem::directory_iterator(Dir))
    TmpLeft |= E.path().filename().string().find(".tmp") != std::string::npos;
  Ok &= check(!TmpLeft, "no partial temp file left behind");

  // The failed write does not advance the durable cursor, so the step-49
  // boundary retries immediately; the rotation then walks 73..193.
  CheckpointStore Store(Dir);
  Expected<CheckpointData> C = Store.loadNewestValid();
  if (!check(bool(C), "later checkpoint writes recovered"))
    return false;
  Ok &= check(C->StepCount == 193,
              "cursor retried at the first boundary after the failure");
  SimOptions Plain = guardedOpts(/*Cells=*/16, /*Steps=*/200);
  Plain.Guard.Enabled = false;
  Simulator Resumed(*M, Plain);
  if (!check(Resumed.resumeFrom(*C).isOk(), "resume accepted"))
    return false;
  Resumed.run();
  Simulator Ref(*M, Plain);
  Ref.run();
  Ok &= check(finalStatesIdentical(Resumed, Ref),
              "resumed final state bit-identical to uninterrupted");

  // A disk that never frees up: every write fails (the directory probe
  // included), nothing durable lands — and the run still completes with
  // every failure counted.
  std::string Dir2 = freshDir("ckpt-enospc-persist");
  SimOptions Opts2 = guardedOpts(/*Cells=*/8, /*Steps=*/100);
  Opts2.Guard.Enabled = false;
  Opts2.Checkpoint.Dir = Dir2;
  Opts2.Checkpoint.EveryN = 24;
  ErrsBefore = telemetry::Registry::instance().value("sim.checkpoint.errors");
  support::armFailPoint("write-enospc", /*Nth=*/1, /*Persistent=*/true);
  Simulator S2(*M, Opts2);
  S2.run();
  Fires = support::failPointFireCount();
  support::disarmFailPoints();
  Ok &= check(S2.stepsDone() == 100 && !S2.interrupted(),
              "persistently full disk never stops the run");
  Ok &= check(Fires >= 2, "every write attempt went through the fail point");
  if (telemetry::kEnabled)
    Ok &= check(telemetry::Registry::instance().value(
                    "sim.checkpoint.errors") == ErrsBefore + Fires,
                "every failed write was counted");
  Ok &= check(CheckpointStore(Dir2).list().empty(),
              "nothing durable landed on the full disk");

  std::filesystem::remove_all(Dir);
  std::filesystem::remove_all(Dir2);
  return Ok;
}

//===----------------------------------------------------------------------===//
// Tissue scenarios (reaction-diffusion driver, docs/TISSUE.md)
//===----------------------------------------------------------------------===//

/// A small guarded tissue protocol; dt is CFL-safe for the default
/// sigma/dx (limit dx^2/(2*sigma*dims) = 0.3125 ms in 1D).
TissueOptions tissueOpts(int64_t NX, int64_t NY, int64_t Steps) {
  TissueOptions T;
  T.Grid = {NX, NY, 0.025};
  T.Sigma = 0.001;
  T.Sim = guardedOpts(NX * NY, Steps);
  T.Sim.Dt = 0.005;
  return T;
}

/// A NaN poked into Vm mid-tissue-run: the very next diffusion half-step
/// smears it across the stencil neighborhood, so the guard sees a
/// multi-cell fault — and rollback + dt-halving (which re-runs the full
/// operator-split pipeline, diffusion included) must still heal the
/// sheet with nothing frozen or degraded.
bool scenarioTissueNanStencil() {
  auto M = compileSuiteModel("HodgkinHuxley", EngineConfig::limpetMLIR(4));
  if (!M)
    return false;
  int VmIdx = M->info().externalIndex("Vm");
  if (!check(VmIdx >= 0, "model has a Vm external"))
    return false;
  TissueSimulator S(*M, tissueOpts(/*NX=*/64, /*NY=*/1, /*Steps=*/200));
  if (!check(S.preflight().isOk(), "preflight passes"))
    return false;
  bool Fired = false;
  S.setFaultInjector([&](Simulator &Sim) {
    if (!Fired && Sim.stepsDone() == 40) {
      Fired = true;
      Sim.pokeExternal(size_t(VmIdx), /*Cell=*/20, quietNaN());
    }
  });
  S.run();
  const RunReport &R = S.report();
  std::printf("%s", R.str().c_str());
  bool Ok = check(Fired, "injector fired");
  Ok &= check(S.scanIsHealthy(), "tissue healthy after recovery");
  Ok &= check(R.FaultEvents >= 1, "fault detected");
  Ok &= check(R.FaultyCells >= 1,
              "stencil-smeared fault observed in the scan");
  Ok &= check(R.CellsFrozen == 0 && R.CellsDegraded == 0,
              "one-shot NaN healed without freezing or degrading");
  Ok &= check(S.stepsDone() == 200, "run completed");
  Ok &= check(populationFinite(S), "sheet finite at the end");
  return Ok;
}

/// Shutdown mid-tissue-run: the final durable checkpoint carries the
/// tissue section (grid, sigma, method, stimulus), a matching tissue
/// simulator resumes bit-identically to an uninterrupted run, and every
/// mismatched resume target — wrong sigma, wrong grid, or a plain
/// (non-tissue) simulator — is refused recoverably.
bool scenarioTissueCkptResume() {
  auto M = compileSuiteModel("HodgkinHuxley", EngineConfig::limpetMLIR(4));
  if (!M)
    return false;
  std::string Dir = freshDir("tissue-resume");
  TissueOptions TO = tissueOpts(/*NX=*/32, /*NY=*/4, /*Steps=*/200);
  TO.Sim.Checkpoint.Dir = Dir;
  TO.Sim.Checkpoint.EveryN = 24;
  clearShutdownRequest();
  TissueSimulator S(*M, TO);
  S.setFaultInjector([](Simulator &Sim) {
    if (Sim.stepsDone() == 100)
      requestShutdown();
  });
  S.run();
  clearShutdownRequest();
  bool Ok = check(S.interrupted(), "run stopped on the shutdown request");
  Ok &= check(S.stepsDone() < 200, "run stopped early");

  CheckpointStore Store(Dir);
  Expected<CheckpointData> C = Store.loadNewestValid();
  if (!check(bool(C), "final checkpoint loads"))
    return false;
  Ok &= check(C->TissueNX == 32 && C->TissueNY == 4,
              "checkpoint carries the tissue geometry");
  Ok &= check(C->TissueSigma == TO.Sigma, "checkpoint carries sigma");
  Ok &= check(!C->TissueStim.empty(), "checkpoint carries the protocol");

  TissueSimulator Resumed(*M, tissueOpts(32, 4, 200));
  if (!check(Resumed.resumeFrom(*C).isOk(), "matching resume accepted"))
    return false;
  Resumed.run();
  TissueSimulator Ref(*M, tissueOpts(32, 4, 200));
  Ref.run();
  Ok &= check(Resumed.stepsDone() == 200, "resumed run reached the target");
  Ok &= check(finalStatesIdentical(Resumed, Ref),
              "resumed final state bit-identical to uninterrupted");

  TissueOptions WrongSigma = tissueOpts(32, 4, 200);
  WrongSigma.Sigma = 0.002;
  TissueSimulator WS(*M, WrongSigma);
  Status St = WS.resumeFrom(*C);
  Ok &= check(!St.isOk(), "sigma mismatch refused");
  Ok &= check(St.message().find("diffusion") != std::string::npos,
              "error names the diffusion mismatch");

  TissueOptions WrongGrid = tissueOpts(/*NX=*/128, /*NY=*/1, 200);
  TissueSimulator WG(*M, WrongGrid);
  Ok &= check(!WG.resumeFrom(*C).isOk(), "geometry mismatch refused");

  SimOptions Plain = guardedOpts(/*Cells=*/128, /*Steps=*/200);
  Plain.Dt = 0.005;
  Simulator P(*M, Plain);
  St = P.resumeFrom(*C);
  Ok &= check(!St.isOk(), "plain simulator refuses a tissue checkpoint");
  Ok &= check(St.message().find("tissue") != std::string::npos,
              "error says the checkpoint is a tissue run");
  std::filesystem::remove_all(Dir);
  return Ok;
}

/// Cooperative cancel landing while the stage pipeline is hot: the run
/// stops at the next step boundary (never between the stages of one
/// Strang step), writes a resumable final checkpoint, and resuming
/// finishes bit-identically to a never-cancelled run.
bool scenarioTissueCancelMidStage() {
  auto M = compileSuiteModel("HodgkinHuxley", EngineConfig::limpetMLIR(4));
  if (!M)
    return false;
  std::string Dir = freshDir("tissue-cancel");
  TissueOptions TO = tissueOpts(/*NX=*/64, /*NY=*/1, /*Steps=*/400);
  TO.Sim.NumThreads = 2; // stages sharded when the cancel lands
  TO.Sim.Checkpoint.Dir = Dir;
  CancelToken Token;
  TO.Sim.Cancel = &Token;
  TissueSimulator S(*M, TO);
  S.setFaultInjector([&](Simulator &Sim) {
    if (Sim.stepsDone() == 150)
      Token.cancel();
  });
  S.run();
  bool Ok = check(S.interrupted(), "run stopped on the cancel");
  Ok &= check(S.stopReason() == StopReason::Cancelled,
              "stop reason is cancelled");
  Ok &= check(S.stepsDone() >= 150 && S.stepsDone() < 400,
              "cancel honored at a step boundary mid-run");

  CheckpointStore Store(Dir);
  Expected<CheckpointData> C = Store.loadNewestValid();
  if (!check(bool(C), "final checkpoint written on cancel"))
    return false;
  Ok &= check(C->StepCount == S.stepsDone(),
              "checkpoint captures the cancelled step");
  Ok &= check(C->TissueNX == 64, "checkpoint carries the tissue section");

  TissueSimulator Resumed(*M, tissueOpts(64, 1, 400));
  if (!check(Resumed.resumeFrom(*C).isOk(), "resume accepted"))
    return false;
  Resumed.run();
  Ok &= check(!Resumed.interrupted(), "resumed run finishes");
  TissueSimulator Ref(*M, tissueOpts(64, 1, 400));
  Ref.run();
  Ok &= check(finalStatesIdentical(Resumed, Ref),
              "resumed final state bit-identical to uncancelled run");
  std::filesystem::remove_all(Dir);
  return Ok;
}

//===----------------------------------------------------------------------===//
// Width-autotuning scenarios (persisted tuning records, docs/COMPILER.md)
//===----------------------------------------------------------------------===//

/// Shared setup for the tuning scenarios: a scratch disk cache tier and a
/// tiny tuner protocol so a full tune finishes in milliseconds. Restores
/// the previous disk directory on destruction.
class TuneScratch {
public:
  explicit TuneScratch(const char *Tag)
      : Dir(freshDir(Tag)), PrevDir(compiler::CompileCache::global().diskDir()) {
    compiler::CompileCache::global().setDiskDir(Dir);
    unsetenv("LIMPET_TUNE_FORCE");
    setenv("LIMPET_TUNE_CELLS", "32", 1);
    setenv("LIMPET_TUNE_WINDOW_MS", "2", 1);
    setenv("LIMPET_TUNE_REPEATS", "1", 1);
  }
  ~TuneScratch() {
    compiler::CompileCache::global().setDiskDir(PrevDir);
    std::filesystem::remove_all(Dir);
  }

  std::string Dir;

private:
  std::string PrevDir;
};

compiler::AutoSelection selectHH(bool RunTuner) {
  const models::ModelEntry *M = models::findModel("HodgkinHuxley");
  return compiler::selectAutoConfig(M->Name, M->Source,
                                    EngineConfig::autoTuned(),
                                    EngineTier::VM, RunTuner);
}

uint64_t tuneCounter(const char *Path) {
  return telemetry::Registry::instance().value(Path);
}

/// A corrupted (bit-flipped, then truncated) tuning record: every read
/// falls back recoverably to the heuristic, the corruption is counted,
/// and a clean re-tune overwrites the bad record in place.
bool scenarioTuneCorrupt() {
  if (!models::findModel("HodgkinHuxley"))
    return false;
  TuneScratch Scratch("tune-corrupt");

  compiler::AutoSelection Tuned = selectHH(/*RunTuner=*/true);
  bool Ok = check(bool(Tuned), "tuning produced a selection");
  Ok &= check(Tuned.Source == compiler::TuneSource::Tuned,
              "cold selection came from the tuner");
  std::string Path = compiler::tuneRecordPath(Tuned.TuneKey);
  if (!check(std::filesystem::exists(Path), "tuning record persisted"))
    return false;

  compiler::AutoSelection Warm = selectHH(/*RunTuner=*/false);
  Ok &= check(Warm.Source == compiler::TuneSource::Record,
              "warm selection replays the record");
  Ok &= check(Warm.Point == Tuned.Point, "warm selection picks the winner");

  // Flip one payload byte: the trailing FNV-1a checksum must catch it.
  std::string Bytes;
  (void)compiler::readFileBytes(Path, Bytes);
  std::string Flipped = Bytes;
  Flipped[Flipped.size() / 2] = char(Flipped[Flipped.size() / 2] ^ 0xff);
  std::ofstream(Path, std::ios::binary | std::ios::trunc)
      .write(Flipped.data(), std::streamsize(Flipped.size()));
  uint64_t CorruptBefore = tuneCounter("tune.record.corrupt");
  compiler::AutoSelection Fallback = selectHH(/*RunTuner=*/false);
  Ok &= check(bool(Fallback), "corrupt record read is recoverable");
  Ok &= check(Fallback.Source == compiler::TuneSource::Heuristic,
              "corrupt record falls back to the heuristic");
  if (telemetry::kEnabled)
    Ok &= check(tuneCounter("tune.record.corrupt") == CorruptBefore + 1,
                "corruption was counted");

  // Truncation mid-file (a crash without atomic rename) behaves the same.
  std::ofstream(Path, std::ios::binary | std::ios::trunc)
      .write(Bytes.data(), std::streamsize(Bytes.size() / 3));
  compiler::AutoSelection Truncated = selectHH(/*RunTuner=*/false);
  Ok &= check(Truncated.Source == compiler::TuneSource::Heuristic,
              "truncated record falls back to the heuristic");

  // A clean re-tune overwrites the bad record and warm reads recover.
  compiler::AutoSelection Retuned = selectHH(/*RunTuner=*/true);
  Ok &= check(Retuned.Source == compiler::TuneSource::Tuned,
              "re-tune replaces the corrupt record");
  compiler::AutoSelection Healed = selectHH(/*RunTuner=*/false);
  Ok &= check(Healed.Source == compiler::TuneSource::Record,
              "record reads cleanly after the re-tune");
  Ok &= check(Healed.Point == Retuned.Point,
              "healed selection picks the re-tuned winner");
  return Ok;
}

/// A structurally valid record from the wrong machine class (mismatched
/// registry fingerprint) or the wrong key: stale by construction, counted,
/// ignored, and replaced by the next tune.
bool scenarioTuneStale() {
  if (!models::findModel("HodgkinHuxley"))
    return false;
  TuneScratch Scratch("tune-stale");

  compiler::AutoSelection Tuned = selectHH(/*RunTuner=*/true);
  if (!check(bool(Tuned) && Tuned.Source == compiler::TuneSource::Tuned,
             "cold tune succeeded"))
    return false;
  std::string Path = compiler::tuneRecordPath(Tuned.TuneKey);
  std::optional<compiler::TuningRecord> Rec =
      compiler::readTuningRecord(Tuned.TuneKey);
  if (!check(Rec.has_value(), "persisted record reads back"))
    return false;

  // Same key, different machine class: checksum-valid but stale.
  compiler::TuningRecord Foreign = *Rec;
  Foreign.RegistryFingerprint ^= 0x1;
  (void)compiler::writeTuningRecord(Foreign);
  uint64_t StaleBefore = tuneCounter("tune.record.stale");
  compiler::AutoSelection Fallback = selectHH(/*RunTuner=*/false);
  bool Ok = check(Fallback.Source == compiler::TuneSource::Heuristic,
                  "fingerprint mismatch falls back to the heuristic");
  if (telemetry::kEnabled)
    Ok &= check(tuneCounter("tune.record.stale") == StaleBefore + 1,
                "staleness was counted");

  // A record whose embedded key disagrees with its filename (e.g. a tuner
  // version bump re-keyed the store) is equally stale.
  compiler::TuningRecord WrongKey = *Rec;
  WrongKey.TuneKey ^= 0xff;
  std::string WrongBytes = WrongKey.serialize();
  std::ofstream(Path, std::ios::binary | std::ios::trunc)
      .write(WrongBytes.data(), std::streamsize(WrongBytes.size()));
  compiler::AutoSelection Fallback2 = selectHH(/*RunTuner=*/false);
  Ok &= check(Fallback2.Source == compiler::TuneSource::Heuristic,
              "key mismatch falls back to the heuristic");

  // Re-tuning on this machine replaces the stale record.
  compiler::AutoSelection Retuned = selectHH(/*RunTuner=*/true);
  Ok &= check(Retuned.Source == compiler::TuneSource::Tuned,
              "re-tune replaces the stale record");
  compiler::AutoSelection Healed = selectHH(/*RunTuner=*/false);
  Ok &= check(Healed.Source == compiler::TuneSource::Record,
              "record reads cleanly after the re-tune");
  return Ok;
}

/// No faults at all: the health scan at default cadence must cost less
/// than 5% of step time (min-of-3 to shed scheduler noise).
bool scenarioOverhead() {
  auto M = compileSuiteModel("HodgkinHuxley", EngineConfig::limpetMLIR(8));
  if (!M)
    return false;
  auto TimeRun = [&](bool Guard) {
    double Best = 1e30;
    for (int Rep = 0; Rep != 3; ++Rep) {
      SimOptions Opts = guardedOpts(/*Cells=*/512, /*Steps=*/2000);
      Opts.Guard.Enabled = Guard;
      Simulator S(*M, Opts);
      auto T0 = std::chrono::steady_clock::now();
      S.run();
      Best = std::min(Best, std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - T0)
                                .count());
    }
    return Best;
  };
  double Off = TimeRun(false), On = TimeRun(true);
  double Pct = 100.0 * (On - Off) / Off;
  // Best-of-3 timing is still jittery on loaded/shared machines, so the
  // acceptance threshold can be relaxed via the environment (CI runs the
  // scenario serially with LIMPET_OVERHEAD_PCT=15).
  double Limit = 5.0;
  if (const char *V = std::getenv("LIMPET_OVERHEAD_PCT"))
    if (double L = std::atof(V); L > 0)
      Limit = L;
  std::printf("  guard off: %.3f ms   guard on: %.3f ms   overhead: %+.2f%% "
              "(limit %.0f%%)\n",
              Off * 1e3, On * 1e3, Pct, Limit);
  return check(Pct < Limit, "guard overhead below limit");
}

//===----------------------------------------------------------------------===//
// Daemon scenarios (admission control, deadlines, journal durability —
// docs/DAEMON.md)
//===----------------------------------------------------------------------===//

/// A saturated JobQueue: equal-priority submits bounce with explicit
/// reasons (queue-full / tenant-cap), a strictly-higher-priority submit
/// sheds the lowest-priority (youngest among ties) queued job, and the
/// fair-share pop order honors per-tenant running caps.
bool scenarioDaemonQueueFull() {
  daemon::JobQueue::Limits Lim;
  Lim.MaxQueued = 3;
  Lim.PerTenantRunning = 1;
  Lim.PerTenantInFlight = 3;
  daemon::JobQueue Q(Lim);
  auto mk = [](uint64_t Id, const char *Tenant, int Priority) {
    auto J = std::make_shared<daemon::Job>();
    J->Spec.Id = Id;
    J->Spec.Tenant = Tenant;
    J->Spec.Priority = Priority;
    J->Spec.Model = "HodgkinHuxley";
    return J;
  };

  bool Ok = true;
  Ok &= check(Q.submit(mk(1, "alpha", 0)).Accepted, "job 1 admitted");
  Ok &= check(Q.submit(mk(2, "alpha", 0)).Accepted, "job 2 admitted");
  Ok &= check(Q.submit(mk(3, "alpha", 0)).Accepted, "job 3 admitted");

  // alpha is now at its in-flight cap — that rejection fires before the
  // queue-depth check so the reason names the tenant's own backlog.
  daemon::JobQueue::Admission A = Q.submit(mk(4, "alpha", 9));
  Ok &= check(!A.Accepted && A.Reason == "tenant-cap",
              "over-cap tenant rejected with 'tenant-cap'");

  // The queue is full; an equal-priority submit from another tenant must
  // wait its turn, not evict anyone.
  A = Q.submit(mk(5, "beta", 0));
  Ok &= check(!A.Accepted && A.Reason == "queue-full",
              "equal-priority submit rejected with 'queue-full'");
  Ok &= check(Q.shedCount() == 0, "no job shed by a rejected submit");

  // A strictly-higher-priority submit sheds the youngest of the
  // lowest-priority queued jobs: job 3.
  A = Q.submit(mk(6, "beta", 2));
  Ok &= check(A.Accepted, "higher-priority submit admitted into full queue");
  Ok &= check(A.Shed && A.Shed->Spec.Id == 3,
              "victim is the youngest lowest-priority queued job");
  Ok &= check(A.Shed && A.Shed->State.load() == daemon::JobState::Shed,
              "victim marked terminal (shed)");
  Ok &= check(Q.shedCount() == 1 && Q.queuedCount() == 3,
              "queue depth unchanged after the swap");

  // Fair-share dispatch: no tenant is running, so the highest-priority
  // queued job (6) goes first; then beta is at PerTenantRunning and
  // alpha's FIFO head (1) follows.
  daemon::JobPtr P = Q.pop();
  Ok &= check(P && P->Spec.Id == 6, "pop prefers the high-priority job");
  Ok &= check(P && P->State.load() == daemon::JobState::Running,
              "popped job marked running");
  P = Q.pop();
  Ok &= check(P && P->Spec.Id == 1,
              "second pop falls to the other tenant's FIFO head");

  // Both tenants at their running cap: queued job 2 (alpha) only becomes
  // runnable once alpha's slot frees.
  Q.finished(Q.find(1));
  P = Q.pop();
  Ok &= check(P && P->Spec.Id == 2, "freed tenant slot unblocks queued work");

  Q.shutdown();
  Ok &= check(Q.pop() == nullptr, "pop drains to nullptr after shutdown");
  return Ok;
}

/// A per-job wall-clock deadline expiring mid-run: the simulator stops
/// at a step boundary with StopReason::DeadlineExpired and a final
/// durable checkpoint, and resuming from it finishes bit-identically to
/// a run that never had a deadline.
bool scenarioDaemonDeadline() {
  auto M = compileSuiteModel("HodgkinHuxley", EngineConfig::limpetMLIR(4));
  if (!M)
    return false;
  std::string Dir = freshDir("deadline");
  constexpr int64_t Steps = 500000;
  SimOptions Opts = guardedOpts(/*Cells=*/32, Steps);
  Opts.Checkpoint.Dir = Dir;
  Opts.Checkpoint.EveryN = 4096;

  CancelToken Token;
  Opts.Cancel = &Token;
  Simulator S(*M, Opts);
  // Far too tight for 500k steps on any machine; a slow box just stops
  // earlier. Armed after compilation so only run time is on the clock.
  Token.setDeadlineAfter(0.002);
  S.run();
  bool Ok = check(S.interrupted(), "run stopped on the deadline");
  Ok &= check(S.stopReason() == StopReason::DeadlineExpired,
              "stop reason is deadline-expired");
  Ok &= check(S.stepsDone() > 0 && S.stepsDone() < Steps,
              "deadline landed mid-run");

  CheckpointStore Store(Dir);
  std::string Path;
  Expected<CheckpointData> C = Store.loadNewestValid(&Path);
  if (!check(bool(C), "final checkpoint written at expiry"))
    return false;
  Ok &= check(C->StepCount == S.stepsDone(),
              "checkpoint captures the interrupted step");

  SimOptions Plain = guardedOpts(/*Cells=*/32, Steps);
  Simulator Resumed(*M, Plain);
  if (!check(Resumed.resumeFrom(*C).isOk(), "resume accepted"))
    return false;
  Resumed.run();
  Ok &= check(!Resumed.interrupted(), "resumed run finishes (no deadline)");
  Simulator Ref(*M, Plain);
  Ref.run();
  Ok &= check(finalStatesIdentical(Resumed, Ref),
              "resumed final state bit-identical to undeadlined run");

  // An already-expired deadline still stops cooperatively at the first
  // boundary — never a hang, never a skipped final checkpoint.
  std::string Dir2 = freshDir("deadline-zero");
  SimOptions Opts2 = guardedOpts(/*Cells=*/8, /*Steps=*/100);
  Opts2.Checkpoint.Dir = Dir2;
  CancelToken Token2;
  Token2.setDeadlineAfter(0.0);
  Opts2.Cancel = &Token2;
  Simulator S2(*M, Opts2);
  S2.run();
  Ok &= check(S2.interrupted() &&
                  S2.stopReason() == StopReason::DeadlineExpired,
              "pre-expired deadline stops at the first boundary");
  Ok &= check(bool(CheckpointStore(Dir2).loadNewestValid()),
              "immediate expiry still leaves a resumable checkpoint");

  std::filesystem::remove_all(Dir);
  std::filesystem::remove_all(Dir2);
  return Ok;
}

/// The job journal under a crash mid-append: a truncated tail loses at
/// most the record being written, a corrupt record ends the scan at the
/// last good prefix, and compaction rewrites exactly the live set.
bool scenarioDaemonJournalTruncate() {
  std::string Dir = freshDir("journal");
  std::string Path = Dir + "/journal.lj";

  {
    daemon::Journal J(Path);
    if (!check(J.open().isOk(), "journal opens"))
      return false;
    (void)J.append(daemon::Journal::Kind::Accepted, 1, "{\"id\":1}");
    (void)J.append(daemon::Journal::Kind::Started, 1);
    (void)J.append(daemon::Journal::Kind::Accepted, 2, "{\"id\":2}");
    (void)J.append(daemon::Journal::Kind::Finished, 1);
    (void)J.append(daemon::Journal::Kind::Accepted, 3, "{\"id\":3}");
  }

  bool Truncated = false;
  Expected<std::vector<daemon::Journal::Record>> Recs =
      daemon::Journal::readAll(Path, &Truncated);
  if (!check(bool(Recs), "intact journal reads"))
    return false;
  bool Ok = check(Recs->size() == 5 && !Truncated,
                  "all five records intact, no truncation");
  std::vector<daemon::Journal::Record> Live =
      daemon::Journal::unfinished(*Recs);
  Ok &= check(Live.size() == 2 && Live[0].JobId == 2 && Live[1].JobId == 3,
              "unfinished = accepted jobs with no terminal record");

  // SIGKILL mid-append: chop the tail mid-record. Only the record being
  // written is lost.
  std::string Bytes;
  (void)compiler::readFileBytes(Path, Bytes);
  std::ofstream(Path, std::ios::binary | std::ios::trunc)
      .write(Bytes.data(), std::streamsize(Bytes.size() - 7));
  Recs = daemon::Journal::readAll(Path, &Truncated);
  if (!check(bool(Recs), "truncated journal still reads"))
    return false;
  Ok &= check(Recs->size() == 4 && Truncated,
              "truncation drops exactly the torn tail record");
  Live = daemon::Journal::unfinished(*Recs);
  Ok &= check(Live.size() == 1 && Live[0].JobId == 2,
              "replay set shrinks with the lost admission");

  // Compaction rewrites just the live records, atomically.
  if (!check(daemon::Journal::compact(Path, Live).isOk(), "compaction runs"))
    return false;
  Recs = daemon::Journal::readAll(Path, &Truncated);
  if (!check(bool(Recs), "compacted journal reads"))
    return false;
  Ok &= check(Recs->size() == 1 && !Truncated &&
                  (*Recs)[0].K == daemon::Journal::Kind::Accepted &&
                  (*Recs)[0].JobId == 2 && (*Recs)[0].Payload == "{\"id\":2}",
              "compacted journal holds exactly the live record");

  // A flipped byte inside the first record's payload: the checksum
  // rejects it and the scan ends before it — never a misparsed record.
  (void)compiler::readFileBytes(Path, Bytes);
  Bytes[Bytes.size() - 3] ^= 0x40;
  std::ofstream(Path, std::ios::binary | std::ios::trunc)
      .write(Bytes.data(), std::streamsize(Bytes.size()));
  Recs = daemon::Journal::readAll(Path, &Truncated);
  if (!check(bool(Recs), "corrupt journal still reads as a prefix"))
    return false;
  Ok &= check(Recs->empty() && Truncated,
              "corrupt record excluded from the recovered prefix");

  // A missing journal is a cold start, not an error.
  Recs = daemon::Journal::readAll(Dir + "/absent.lj", &Truncated);
  Ok &= check(bool(Recs) && Recs->empty() && !Truncated,
              "missing journal reads as empty");

  std::filesystem::remove_all(Dir);
  return Ok;
}

/// The disk filling up under the job journal: an append fails
/// recoverably with no partial frame on disk (the durable prefix is
/// untouched and still replays), the same record lands on retry once
/// space frees, and a compaction hitting ENOSPC leaves the original
/// journal intact with no temp file behind.
bool scenarioJournalEnospc() {
  std::string Dir = freshDir("journal-enospc");
  std::string Path = Dir + "/journal.lj";
  daemon::Journal J(Path);
  if (!check(J.open().isOk(), "journal opens"))
    return false;
  bool Ok = check(
      J.append(daemon::Journal::Kind::Accepted, 1, "{\"id\":1}").isOk(),
      "first append lands");
  Ok &= check(J.append(daemon::Journal::Kind::Started, 1).isOk(),
              "second append lands");

  support::armFailPoint("write-enospc", /*Nth=*/1);
  Status St = J.append(daemon::Journal::Kind::Accepted, 2, "{\"id\":2}");
  uint64_t Fires = support::failPointFireCount();
  support::disarmFailPoints();
  Ok &= check(!St.isOk(), "full-disk append surfaces a recoverable error");
  Ok &= check(St.message().find("space") != std::string::npos,
              "error says the disk is full");
  Ok &= check(Fires == 1, "the injection ran the production append path");

  bool Truncated = false;
  Expected<std::vector<daemon::Journal::Record>> Recs =
      daemon::Journal::readAll(Path, &Truncated);
  if (!check(bool(Recs), "journal still reads"))
    return false;
  Ok &= check(Recs->size() == 2 && !Truncated,
              "failed append left the durable prefix untouched");

  // Space freed: the same record lands on retry, nothing lost between.
  Ok &= check(
      J.append(daemon::Journal::Kind::Accepted, 2, "{\"id\":2}").isOk(),
      "append succeeds once the disk frees up");
  Recs = daemon::Journal::readAll(Path, &Truncated);
  if (!check(bool(Recs) && Recs->size() == 3 && !Truncated,
             "retried record landed"))
    return false;

  // Compaction is a whole-file rewrite through writeFileAtomic: ENOSPC
  // there must never replace the journal with a partial rewrite.
  std::vector<daemon::Journal::Record> Live =
      daemon::Journal::unfinished(*Recs);
  Ok &= check(Live.size() == 2, "both admitted jobs are live");
  support::armFailPoint("write-enospc", /*Nth=*/1);
  Status CSt = daemon::Journal::compact(Path, Live);
  support::disarmFailPoints();
  Ok &= check(!CSt.isOk(), "full-disk compaction surfaces a recoverable error");
  Recs = daemon::Journal::readAll(Path, &Truncated);
  Ok &= check(bool(Recs) && Recs->size() == 3 && !Truncated,
              "failed compaction left the original journal intact");
  bool TmpLeft = false;
  for (const auto &E : std::filesystem::directory_iterator(Dir))
    TmpLeft |= E.path().filename().string().find(".tmp") != std::string::npos;
  Ok &= check(!TmpLeft, "no partial temp file left behind");

  // With space back, the same compaction lands.
  Ok &= check(daemon::Journal::compact(Path, Live).isOk(),
              "compaction succeeds once the disk frees up");
  Recs = daemon::Journal::readAll(Path, &Truncated);
  Ok &= check(bool(Recs) && Recs->size() == 2 && !Truncated,
              "compacted journal holds exactly the live set");

  std::filesystem::remove_all(Dir);
  return Ok;
}

struct Scenario {
  const char *Name;
  const char *What;
  bool (*Run)();
};

const Scenario Scenarios[] = {
    {"nan-state", "one-shot NaN in a state variable -> healed by sub-stepping",
     scenarioNanState},
    {"inf-vm", "one-shot +Inf in Vm -> healed by sub-stepping", scenarioInfVm},
    {"persistent", "NaN re-injected every step -> cell frozen, neighbors exact",
     scenarioPersistent},
    {"lut-corrupt", "NaN LUT rows -> population degrades to scalar-exact",
     scenarioLutCorrupt},
    {"extreme-dt", "dt 100x past stability -> run kept finite",
     scenarioExtremeDt},
    {"extreme-param", "pathological parameter -> run completes, cells flagged",
     scenarioExtremeParam},
    {"sharded", "persistent NaN under 2/4 shards -> recovery thread-invariant",
     scenarioSharded},
    {"ensemble-quarantine",
     "poison sweep member -> quarantined, healthy members bit-exact",
     scenarioEnsembleQuarantine},
    {"ckpt-resume", "kill-at-step -> resume bit-identical to uninterrupted",
     scenarioCkptResume},
    {"tissue-nan-in-stencil",
     "NaN smeared through the diffusion stencil -> tissue healed",
     scenarioTissueNanStencil},
    {"tissue-ckpt-resume",
     "shutdown mid-tissue-run -> tissue resume exact, mismatches refused",
     scenarioTissueCkptResume},
    {"tissue-cancel-mid-stage",
     "cancel under a hot stage pipeline -> boundary stop, resumable",
     scenarioTissueCancelMidStage},
    {"ckpt-truncate", "truncated newest checkpoint -> fallback still exact",
     scenarioCkptTruncate},
    {"ckpt-corrupt", "corrupted checkpoints skipped -> oldest valid resumes",
     scenarioCkptCorrupt},
    {"ckpt-stale", "stale model/config/hash -> resume refused, state untouched",
     scenarioCkptStale},
    {"ckpt-enospc", "disk full on checkpoint writes -> run unharmed, counted",
     scenarioCkptEnospc},
    {"journal-enospc",
     "disk full on journal append/compaction -> prefix intact, recoverable",
     scenarioJournalEnospc},
    {"tune-corrupt",
     "corrupt/truncated tuning record -> heuristic fallback, clean re-tune",
     scenarioTuneCorrupt},
    {"tune-stale",
     "tuning record from another machine class/key -> stale, ignored",
     scenarioTuneStale},
    {"daemon-queue-full",
     "saturated queue -> explicit rejects, priority shed, fair-share pops",
     scenarioDaemonQueueFull},
    {"daemon-deadline",
     "wall-clock deadline mid-run -> expired + resumable final checkpoint",
     scenarioDaemonDeadline},
    {"daemon-journal-truncate",
     "journal torn mid-append -> intact prefix recovered, compaction exact",
     scenarioDaemonJournalTruncate},
    {"overhead", "clean run -> health scan costs < 5%", scenarioOverhead},
};

} // namespace

int main(int argc, char **argv) {
  if (argc > 1 && (!std::strcmp(argv[1], "--list") ||
                   !std::strcmp(argv[1], "--help"))) {
    std::printf("usage: faultinject [scenario]\n\nscenarios:\n");
    for (const Scenario &S : Scenarios)
      std::printf("  %-14s %s\n", S.Name, S.What);
    return 0;
  }

  const char *Only = argc > 1 ? argv[1] : nullptr;
  int Failed = 0, Matched = 0;
  for (const Scenario &S : Scenarios) {
    if (Only && std::strcmp(S.Name, Only) != 0)
      continue;
    ++Matched;
    std::printf("== %s: %s\n", S.Name, S.What);
    bool Ok = S.Run();
    std::printf("   %s\n", Ok ? "PASS" : "FAIL");
    Failed += !Ok;
  }
  if (Only && !Matched) {
    std::fprintf(stderr, "error: unknown scenario '%s' (see --list)\n", Only);
    return 1;
  }
  std::printf("%d/%d scenarios passed\n", Matched - Failed, Matched);
  return Failed != 0;
}
