#!/usr/bin/env bash
#===- tune_smoke.sh - width autotuning end-to-end smoke ------------------===#
#
# Exercises the persisted per-model autotuner (docs/COMPILER.md, "Width
# autotuning & backend registry") through the real CLI:
#
#  1. Cold: --suite --width=auto --autotune benchmarks every registry
#     point per model ("autotune: <model> <point> = ..." on stderr) and
#     persists one $LIMPET_CACHE_DIR/*.tune record per model.
#  2. Warm: a fresh process running --suite --width=auto must select every
#     model's point from its record with zero tuning benchmarks and zero
#     codegen-stage work ("0 cold" in the suite summary).
#  3. Forced points: LIMPET_TUNE_FORCE=<layout>/w<N>/<tier> overrides the
#     record ("via forced"), and the state checksum is identical across
#     every forced point and the record-selected run -- selection must
#     never change the numbers.
#
# The tuner's measurement windows are shrunk to smoke scale via
# LIMPET_TUNE_* ; this test checks the plumbing, not measurement quality.
#
# Usage: tune_smoke.sh <path-to-limpetc>
#
#===----------------------------------------------------------------------===#

set -euo pipefail

LIMPETC=${1:?usage: tune_smoke.sh <path-to-limpetc>}
WORK=$(mktemp -d "${TMPDIR:-/tmp}/limpet-tune-smoke.XXXXXX")
trap 'rm -rf "$WORK"' EXIT

MODEL=HodgkinHuxley
STEPS=60
CELLS=37 # not a multiple of any lane width: exercises the scalar tail

fail() { echo "tune_smoke: FAIL: $*" >&2; exit 1; }

checksum_of() {
  grep 'state checksum' "$1" | tail -1 | sed 's/.*= //'
}

# Records must start absent so "cold" really means cold.
export LIMPET_CACHE_DIR="$WORK/cache"
mkdir -p "$LIMPET_CACHE_DIR"

# Smoke-scale measurement windows: the winner does not matter here, only
# that tuning happens once and the records round-trip.
export LIMPET_TUNE_CELLS=32
export LIMPET_TUNE_WINDOW_MS=2
export LIMPET_TUNE_REPEATS=1

# --- 1. cold: the tuner benchmarks every model and persists records --------
"$LIMPETC" --suite --width=auto --autotune \
  >"$WORK/cold.out" 2>"$WORK/cold.err" \
  || fail "cold autotuned suite compile failed: $(cat "$WORK/cold.err")"
grep -q 'autotune: ' "$WORK/cold.err" \
  || fail "cold suite ran no tuning benchmarks"
grep -Eq 'compiled ([0-9]+)/\1 models \(auto' "$WORK/cold.out" \
  || fail "cold suite did not compile every model under the auto config"
TUNED=$(grep -c ' tuned ' "$WORK/cold.out" || true)
[ "$TUNED" -gt 0 ] || fail "cold suite selected no point via the tuner"
RECORDS=$(find "$LIMPET_CACHE_DIR" -name '*.tune' | wc -l)
[ "$RECORDS" -gt 0 ] || fail "cold suite persisted no .tune records"

# --- 2. warm: fresh process, zero benchmarks, zero codegen -----------------
"$LIMPETC" --suite --width=auto \
  >"$WORK/warm.out" 2>"$WORK/warm.err" \
  || fail "warm suite compile failed: $(cat "$WORK/warm.err")"
if grep -q 'autotune: ' "$WORK/warm.err"; then
  fail "warm suite re-ran tuning benchmarks"
fi
grep -q ' 0 cold' "$WORK/warm.out" \
  || fail "warm suite did codegen-stage work: $(tail -1 "$WORK/warm.out")"
WARM_RECORD=$(grep -c ' record ' "$WORK/warm.out" || true)
[ "$WARM_RECORD" -gt 0 ] \
  || fail "warm suite selected no point from a persisted record"
if grep -q ' heuristic ' "$WORK/warm.out"; then
  fail "warm suite fell back to the heuristic for some model"
fi

# --- 3. forced points are honored and never change the numbers -------------
RUN=("$MODEL" --run --width=auto --steps "$STEPS" --cells "$CELLS")
"$LIMPETC" "${RUN[@]}" >"$WORK/auto.out" 2>"$WORK/auto.err" \
  || fail "record-selected run failed"
grep -q 'via record' "$WORK/auto.err" \
  || fail "run did not select from the record: $(cat "$WORK/auto.err")"
AUTO=$(checksum_of "$WORK/auto.out")
[ -n "$AUTO" ] || fail "record-selected run printed no state checksum"

# w1/w4/w8 specialized points are registered on every host.
for POINT in aos/w1/vm soa/w4/vm aosoa/w8/vm; do
  TAG=$(echo "$POINT" | tr '/' '-')
  LIMPET_TUNE_FORCE=$POINT "$LIMPETC" "${RUN[@]}" \
    >"$WORK/$TAG.out" 2>"$WORK/$TAG.err" \
    || fail "$POINT: forced run failed: $(cat "$WORK/$TAG.err")"
  grep -q "auto point: $POINT via forced" "$WORK/$TAG.err" \
    || fail "$POINT: run did not honor LIMPET_TUNE_FORCE: \
$(cat "$WORK/$TAG.err")"
  FORCED=$(checksum_of "$WORK/$TAG.out")
  [ "$AUTO" = "$FORCED" ] \
    || fail "$POINT: checksum diverged from record point: \
record=$AUTO forced=$FORCED"
  echo "tune_smoke: forced $POINT OK (checksum $FORCED)"
done

echo "tune_smoke: $RECORDS records, warm selection from record, \
checksums identical across points"
echo "tune_smoke: PASS"
