#!/usr/bin/env bash
#===- cache_smoke.sh - artifact + compile-cache end-to-end smoke ---------===#
#
# Exercises the "compile once, simulate many" path through the real CLI:
#
#  1. --emit-artifact / --load-artifact round trip: the loaded artifact
#     must simulate to the exact same state checksum as a fresh compile.
#  2. A corrupted artifact file must be rejected with a recoverable error
#     (nonzero exit, no crash).
#  3. Cold vs. warm LIMPET_CACHE_DIR runs: the cold process compiles (the
#     emit-bytecode stage runs, the cache records a miss + store); the
#     warm process must do zero codegen-stage work (disk_hit recorded, no
#     emit-ir / opt / vectorize / emit-bytecode stage counters).
#
# Counter assertions are verified through --stats; on a telemetry-off
# build (-DLIMPET_TELEMETRY=OFF) they are skipped and only the checksum
# and exit-code checks run.
#
# Usage: cache_smoke.sh <path-to-limpetc>
#
#===----------------------------------------------------------------------===#

set -euo pipefail

LIMPETC=${1:?usage: cache_smoke.sh <path-to-limpetc>}
WORK=$(mktemp -d "${TMPDIR:-/tmp}/limpet-cache-smoke.XXXXXX")
trap 'rm -rf "$WORK"' EXIT

MODEL=HodgkinHuxley
RUN_FLAGS=(--run --width 8 --steps 50 --cells 32)

fail() { echo "cache_smoke: FAIL: $*" >&2; exit 1; }

checksum_of() {
  grep 'state checksum' "$1" | tail -1 | sed 's/.*= //'
}

# Keep the environment's cache out of the artifact phase.
unset LIMPET_CACHE_DIR

# --- 1. artifact round trip -------------------------------------------------
"$LIMPETC" "$MODEL" "${RUN_FLAGS[@]}" --no-cache \
  >"$WORK/fresh.out" 2>"$WORK/fresh.err" \
  || fail "fresh compile+run failed"
"$LIMPETC" "$MODEL" --width 8 --emit-artifact "$WORK/model.lmpa" --no-cache \
  >"$WORK/emit.out" 2>"$WORK/emit.err" \
  || fail "--emit-artifact failed"
[ -s "$WORK/model.lmpa" ] || fail "artifact file is missing or empty"
"$LIMPETC" "$MODEL" "${RUN_FLAGS[@]}" --load-artifact "$WORK/model.lmpa" \
  >"$WORK/loaded.out" 2>"$WORK/loaded.err" \
  || fail "--load-artifact failed"

FRESH=$(checksum_of "$WORK/fresh.out")
LOADED=$(checksum_of "$WORK/loaded.out")
[ -n "$FRESH" ] || fail "fresh run printed no state checksum"
[ "$FRESH" = "$LOADED" ] \
  || fail "artifact simulation diverged: fresh=$FRESH loaded=$LOADED"
echo "cache_smoke: artifact round trip OK (checksum $FRESH)"

# --- 2. corrupt artifact is a recoverable error -----------------------------
head -c 64 "$WORK/model.lmpa" >"$WORK/truncated.lmpa"
if "$LIMPETC" "$MODEL" --run --load-artifact "$WORK/truncated.lmpa" \
    >"$WORK/corrupt.out" 2>"$WORK/corrupt.err"; then
  fail "truncated artifact was accepted"
fi
grep -qi 'artifact' "$WORK/corrupt.err" \
  || fail "truncated artifact error does not mention the artifact"
echo "cache_smoke: corrupt artifact rejected OK"

# --- 3. cold vs. warm disk cache --------------------------------------------
export LIMPET_CACHE_DIR="$WORK/cache"
mkdir -p "$LIMPET_CACHE_DIR"

"$LIMPETC" "$MODEL" "${RUN_FLAGS[@]}" --stats \
  >"$WORK/cold.out" 2>"$WORK/cold.err" || fail "cold cached run failed"
"$LIMPETC" "$MODEL" "${RUN_FLAGS[@]}" --stats \
  >"$WORK/warm.out" 2>"$WORK/warm.err" || fail "warm cached run failed"

COLD=$(checksum_of "$WORK/cold.out")
WARM=$(checksum_of "$WORK/warm.out")
[ "$COLD" = "$WARM" ] \
  || fail "warm cache simulation diverged: cold=$COLD warm=$WARM"
[ "$COLD" = "$FRESH" ] \
  || fail "cached simulation diverged from uncached: $COLD vs $FRESH"

if grep -q 'telemetry disabled at build time' "$WORK/cold.out"; then
  echo "cache_smoke: telemetry-off build, skipping counter assertions"
  echo "cache_smoke: PASS"
  exit 0
fi

# The cold process really compiled: codegen stages ran, the cache missed
# and stored. (--stats renders counters as a tree, so we grep leaf names.)
grep -q 'emit-bytecode:' "$WORK/cold.out" \
  || fail "cold run shows no emit-bytecode stage"
grep -q 'miss ' "$WORK/cold.out" || fail "cold run recorded no cache miss"
grep -q 'store ' "$WORK/cold.out" || fail "cold run recorded no cache store"

# The warm process skipped every codegen stage and hit the disk tier.
grep -q 'disk_hit' "$WORK/warm.out" || fail "warm run shows no disk hit"
for stage in emit-ir emit-bytecode vectorize; do
  if grep -q "${stage}:" "$WORK/warm.out"; then
    fail "warm run ran codegen stage ${stage}"
  fi
done
grep -q 'warm:' "$WORK/warm.out" || fail "warm run recorded no warm compile"
echo "cache_smoke: cold/warm disk cache OK (zero codegen on warm start)"
echo "cache_smoke: PASS"
