#!/usr/bin/env bash
#===- daemon_smoke.sh - limpetd end-to-end robustness smoke --------------===#
#
# The daemon's whole contract through the real binaries and real signals
# (docs/DAEMON.md):
#
#  1. Liveness: start limpetd, ping it.
#  2. A clean job runs to "finished" and reports a state checksum.
#  3. Fault isolation: a job with an unknown model fails alone (exit 4)
#     and the daemon keeps serving.
#  4. Backpressure: a structurally invalid spec is rejected (exit 3)
#     with a machine-readable reason, not a dropped connection.
#  5. Cancellation: a long-running job cancelled mid-run reaches the
#     "cancelled" terminal state (exit 5).
#  6. Durable queue recovery: SIGKILL the daemon while a checkpointing
#     job is mid-run; a restarted daemon replays it from its newest
#     valid checkpoint and its final checksum is bit-identical to an
#     uninterrupted run of the same spec.
#  7. Graceful drain: the shutdown verb stops the daemon with exit 0.
#
# Usage: daemon_smoke.sh <path-to-limpetd> <path-to-limpetctl>
#
#===----------------------------------------------------------------------===#

set -euo pipefail

LIMPETD=${1:?usage: daemon_smoke.sh <path-to-limpetd> <path-to-limpetctl>}
LIMPETCTL=${2:?usage: daemon_smoke.sh <path-to-limpetd> <path-to-limpetctl>}
WORK=$(mktemp -d "${TMPDIR:-/tmp}/limpet-daemon-smoke.XXXXXX")
DPID=""
cleanup() {
  [ -n "$DPID" ] && kill -9 "$DPID" 2>/dev/null
  wait 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

SOCK=$WORK/limpetd.sock
STATE=$WORK/state
MODEL=HodgkinHuxley

fail() { echo "daemon_smoke: FAIL: $*" >&2; exit 1; }

ctl() { "$LIMPETCTL" --socket "$SOCK" "$@"; }

checksum_of_event() {
  # {"event":"finished",...,"checksum":"-4097.9..."} -> the %.17g string
  grep -o '"checksum":"[^"]*"' "$1" | tail -1 | cut -d'"' -f4
}

start_daemon() {
  # sim-threads 1: the smoke populations are small enough that per-step
  # fork-join overhead would dominate; two runners still exercise the
  # multi-tenant concurrency.
  "$LIMPETD" --socket "$SOCK" --state-dir "$STATE" \
    --runners 2 --sim-threads 1 >"$1" 2>&1 &
  DPID=$!
  for _ in $(seq 1 100); do
    if ctl ping >/dev/null 2>&1; then return 0; fi
    kill -0 "$DPID" 2>/dev/null || fail "daemon died at startup (see $1)"
    sleep 0.05
  done
  fail "daemon never answered ping (see $1)"
}

unset LIMPET_CACHE_DIR
# fsync protects against power loss, not SIGKILL: a kill -9 leaves the
# page cache intact, so the replay contract under test is unchanged and
# the dense checkpoint cadences below stay fast on slow filesystems.
# (This also exercises the documented LIMPET_NO_FSYNC escape hatch.)
export LIMPET_NO_FSYNC=1

# --- 1. liveness -------------------------------------------------------------
start_daemon "$WORK/daemon1.log"
echo "daemon_smoke: daemon up (pid $DPID)"

# --- 2. clean job ------------------------------------------------------------
ctl submit --model $MODEL --cells 64 --steps 4000 --wait >"$WORK/ref.out" \
  || fail "clean job did not finish (exit $?)"
REF=$(checksum_of_event "$WORK/ref.out")
[ -n "$REF" ] || fail "finished event carried no checksum"
echo "daemon_smoke: clean job finished, checksum $REF"

# --- 3. fault isolation ------------------------------------------------------
set +e
ctl submit --model NoSuchModel --wait >"$WORK/fault.out" 2>&1
RC=$?
set -e
[ "$RC" = 4 ] || fail "unknown-model job exited $RC, want 4 (failed)"
ctl ping >/dev/null || fail "daemon unhealthy after a failed job"
echo "daemon_smoke: faulting job failed alone, daemon healthy"

# --- 4. admission rejects bad specs -----------------------------------------
set +e
ctl submit --model $MODEL --cells 0 --wait >"$WORK/reject.out" 2>&1
RC=$?
set -e
[ "$RC" = 3 ] || fail "invalid spec exited $RC, want 3 (rejected)"
grep -q '"event":"rejected"' "$WORK/reject.out" \
  || fail "rejection carried no machine-readable event"
echo "daemon_smoke: invalid spec rejected with reason"

# --- 5. cancellation ---------------------------------------------------------
ctl submit --model $MODEL --cells 64 --steps 200000000 \
  --checkpoint-every 50000 >"$WORK/cancel-submit.out" \
  || fail "long job submit failed"
CANCEL_ID=$(grep -o '"id":[0-9]*' "$WORK/cancel-submit.out" | head -1 | cut -d: -f2)
[ -n "$CANCEL_ID" ] || fail "no id in accepted event"
sleep 0.3 # let it start stepping
ctl cancel --id "$CANCEL_ID" >/dev/null || fail "cancel verb failed"
set +e
ctl wait --id "$CANCEL_ID" >"$WORK/cancel-wait.out" 2>&1
RC=$?
set -e
[ "$RC" = 5 ] || fail "cancelled job exited $RC, want 5 (cancelled)"
echo "daemon_smoke: mid-run cancel reached the cancelled state"

# --- 6. SIGKILL -> restart -> replay bit-identical ---------------------------
# ~5 s of stepping at scalar speed: long enough that the kill lands
# mid-run with checkpoints on disk, short enough that replay + reference
# stay well inside the test budget.
ctl submit --model $MODEL --cells 128 --steps 200000 \
  --checkpoint-every 10000 >"$WORK/victim-submit.out" \
  || fail "victim job submit failed"
VICTIM_ID=$(grep -o '"id":[0-9]*' "$WORK/victim-submit.out" | head -1 | cut -d: -f2)
[ -n "$VICTIM_ID" ] || fail "no id in victim accepted event"

# Kill -9 once the victim has durable checkpoints to resume from.
KILLED=0
for _ in $(seq 1 200); do
  if [ "$(ls "$STATE/job-$VICTIM_ID/ckpt"/ckpt-*.lmpc 2>/dev/null | wc -l)" -ge 2 ]; then
    kill -9 "$DPID" || fail "could not SIGKILL the daemon"
    wait "$DPID" 2>/dev/null || true
    KILLED=1
    break
  fi
  sleep 0.05
done
[ "$KILLED" = 1 ] || fail "victim job never wrote two checkpoints"
echo "daemon_smoke: SIGKILLed daemon mid-job $VICTIM_ID"

start_daemon "$WORK/daemon2.log"
grep -q 'replaying' "$WORK/daemon2.log" \
  || fail "restarted daemon did not report replaying unfinished jobs"
set +e
ctl wait --id "$VICTIM_ID" >"$WORK/replay-wait.out" 2>&1
RC=$?
set -e
[ "$RC" = 0 ] || fail "replayed job exited $RC, want 0 (finished)"
REPLAYED=$(checksum_of_event "$STATE/job-$VICTIM_ID/result.json")
[ -n "$REPLAYED" ] || fail "replayed job left no checksum in result.json"

# Reference: the same spec, uninterrupted, in the restarted daemon.
ctl submit --model $MODEL --cells 128 --steps 200000 \
  --checkpoint-every 10000 --wait \
  >"$WORK/replay-ref.out" || fail "replay reference run failed"
REPLAY_REF=$(checksum_of_event "$WORK/replay-ref.out")
[ "$REPLAYED" = "$REPLAY_REF" ] \
  || fail "replayed job diverged: replayed=$REPLAYED ref=$REPLAY_REF"
echo "daemon_smoke: SIGKILL -> restart -> replay bit-identical OK"

# --- 7. graceful drain -------------------------------------------------------
ctl shutdown >/dev/null || fail "shutdown verb failed"
wait "$DPID" && RC=0 || RC=$?
DPID=""
[ "$RC" = 0 ] || fail "daemon shutdown exit code was $RC"
echo "daemon_smoke: graceful drain OK"

echo "daemon_smoke: PASS"
