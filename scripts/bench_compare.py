#!/usr/bin/env python3
"""CI perf-regression gate over LIMPET_BENCH_STATS NDJSON records.

Compares a freshly produced NDJSON stats file (see docs/OBSERVABILITY.md)
against a blessed baseline checked into bench/baselines/, keyed by
(bench, model, config, threads, cells, steps). The compared metric is
ns_per_cell_step (falling back to wall seconds for telemetry-off builds,
where the kernel counters are all zero). Duplicate records for one key are
min-aggregated — the fastest observation is the least noisy estimate of
the machine's capability.

Exit status: 0 when every matched key is within the tolerance, 1 on any
regression beyond it (or on malformed input). New keys (no baseline entry)
and retired keys (baseline only) are reported but never fail the gate, so
adding a bench does not require re-blessing in the same commit.

Usage:
  bench_compare.py CURRENT.ndjson [--baseline PATH] [--bless] [--dry-run]
  bench_compare.py --selftest

  --baseline PATH  baseline NDJSON (default: bench/baselines/ci-smoke.ndjson)
  --bless          overwrite the baseline with CURRENT's aggregated records
  --dry-run        run the full comparison but always exit 0 (for noisy
                   shared runners where the numbers are advisory)
  --selftest       exercise the gate on synthetic records, including an
                   injected regression that must fail; exits non-zero if
                   the gate misbehaves

Tolerance: LIMPET_BENCH_TOLERANCE_PCT (default 25); a key regresses when
current > baseline * (1 + tolerance/100).
"""

import argparse
import json
import os
import sys

DEFAULT_BASELINE = os.path.join("bench", "baselines", "ci-smoke.ndjson")
KEY_FIELDS = ("bench", "model", "config", "threads", "cells", "steps")


def tolerance_pct():
    raw = os.environ.get("LIMPET_BENCH_TOLERANCE_PCT", "25")
    try:
        value = float(raw)
    except ValueError:
        sys.exit(f"bench_compare: LIMPET_BENCH_TOLERANCE_PCT={raw!r} "
                 "is not a number")
    if value < 0:
        sys.exit("bench_compare: LIMPET_BENCH_TOLERANCE_PCT must be >= 0")
    return value


def metric_of(rec):
    """ns/cell-step when the telemetry counters saw work; else seconds."""
    ns = rec.get("ns_per_cell_step", 0)
    if ns and ns > 0:
        return float(ns), "ns_per_cell_step"
    return float(rec.get("seconds", 0)), "seconds"


def load_records(path):
    """Parses NDJSON into {key: (metric, metric_name, record)} (min-agg)."""
    best = {}
    try:
        with open(path) as f:
            lines = f.read().splitlines()
    except OSError as e:
        sys.exit(f"bench_compare: cannot read {path}: {e}")
    for lineno, line in enumerate(lines, 1):
        if not line.strip():
            continue
        try:
            rec = json.loads(line)
        except json.JSONDecodeError as e:
            sys.exit(f"bench_compare: {path}:{lineno}: bad JSON: {e}")
        missing = [k for k in KEY_FIELDS if k not in rec]
        if missing:
            sys.exit(f"bench_compare: {path}:{lineno}: record lacks "
                     f"{missing} (is this a LIMPET_BENCH_STATS file?)")
        key = tuple(rec[k] for k in KEY_FIELDS)
        value, name = metric_of(rec)
        if value <= 0:
            continue  # no timing signal (e.g. zero-step smoke record)
        if key not in best or value < best[key][0]:
            best[key] = (value, name, rec)
    return best


def key_str(key):
    bench, model, config, threads, cells, steps = key
    return (f"{bench}/{model}/{config} threads={threads} "
            f"cells={cells} steps={steps}")


def bless(current, path):
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open(path, "w") as f:
        for key in sorted(current, key=str):
            f.write(json.dumps(current[key][2], sort_keys=True) + "\n")
    print(f"bench_compare: blessed {len(current)} records into {path}")


def compare(current, baseline, tol_pct, out=sys.stdout):
    """Returns the list of regressed keys; prints a per-key report."""
    regressed = []
    matched = 0
    for key in sorted(current, key=str):
        cur_value, cur_name, _ = current[key]
        if key not in baseline:
            print(f"  NEW      {key_str(key)} ({cur_name} {cur_value:.4g})",
                  file=out)
            continue
        base_value, base_name, _ = baseline[key]
        if base_name != cur_name:
            # Metric availability changed (telemetry toggled); the numbers
            # are not comparable, so report and move on.
            print(f"  SKIP     {key_str(key)} (metric changed: "
                  f"{base_name} -> {cur_name})", file=out)
            continue
        matched += 1
        ratio = cur_value / base_value
        delta_pct = (ratio - 1.0) * 100.0
        ok = ratio <= 1.0 + tol_pct / 100.0
        tag = "OK" if ok else "REGRESSED"
        print(f"  {tag:9}{key_str(key)}: {base_name} "
              f"{base_value:.4g} -> {cur_value:.4g} ({delta_pct:+.1f}%)",
              file=out)
        if not ok:
            regressed.append(key)
    for key in sorted(baseline, key=str):
        if key not in current:
            print(f"  RETIRED  {key_str(key)} (baseline only)", file=out)
    print(f"bench_compare: {matched} matched, {len(regressed)} regressed "
          f"(tolerance {tol_pct:g}%)", file=out)
    return regressed


def selftest():
    """The gate must pass on parity, fail on an injected regression."""
    def rec(model, ns, seconds=1.0):
        return {"bench": "selftest", "model": model, "config": "V4",
                "threads": 1, "cells": 256, "steps": 20,
                "seconds": seconds, "ns_per_cell_step": ns}

    def agg(records):
        best = {}
        for r in records:
            key = tuple(r[k] for k in KEY_FIELDS)
            value, name = metric_of(r)
            if key not in best or value < best[key][0]:
                best[key] = (value, name, r)
        return best

    sink = open(os.devnull, "w")
    failures = []

    base = agg([rec("HodgkinHuxley", 10.0), rec("Courtemanche", 50.0)])
    if compare(agg([rec("HodgkinHuxley", 10.0),
                    rec("Courtemanche", 50.0)]), base, 25, sink):
        failures.append("parity flagged as regression")
    # Injected regression: 2x slower must trip a 25% gate.
    if not compare(agg([rec("HodgkinHuxley", 20.0),
                        rec("Courtemanche", 50.0)]), base, 25, sink):
        failures.append("2x regression not detected")
    # Within tolerance and improvements must pass.
    if compare(agg([rec("HodgkinHuxley", 11.0),
                    rec("Courtemanche", 40.0)]), base, 25, sink):
        failures.append("in-tolerance change flagged")
    # Min-aggregation: a noisy slow repeat next to a fast one must not trip.
    if compare(agg([rec("HodgkinHuxley", 30.0), rec("HodgkinHuxley", 9.0),
                    rec("Courtemanche", 50.0)]), base, 25, sink):
        failures.append("min-aggregation not applied")
    # New and retired keys are advisory only.
    if compare(agg([rec("HodgkinHuxley", 10.0), rec("OHara", 99.0)]),
               base, 25, sink):
        failures.append("new/retired keys failed the gate")
    # Telemetry-off records fall back to seconds and still gate.
    base_sec = agg([rec("HodgkinHuxley", 0, seconds=1.0)])
    if not compare(agg([rec("HodgkinHuxley", 0, seconds=2.0)]),
                   base_sec, 25, sink):
        failures.append("seconds-fallback regression not detected")

    for f in failures:
        print(f"selftest FAIL: {f}")
    if failures:
        return 1
    print("bench_compare selftest: 6 checks passed")
    return 0


def main():
    parser = argparse.ArgumentParser(add_help=True)
    parser.add_argument("current", nargs="?", help="fresh NDJSON stats file")
    parser.add_argument("--baseline", default=DEFAULT_BASELINE)
    parser.add_argument("--bless", action="store_true")
    parser.add_argument("--dry-run", action="store_true")
    parser.add_argument("--selftest", action="store_true")
    args = parser.parse_args()

    if args.selftest:
        return selftest()
    if not args.current:
        parser.error("CURRENT.ndjson is required (or use --selftest)")

    current = load_records(args.current)
    if not current:
        sys.exit(f"bench_compare: {args.current} has no usable records")
    if args.bless:
        bless(current, args.baseline)
        return 0
    if not os.path.exists(args.baseline):
        sys.exit(f"bench_compare: no baseline at {args.baseline} "
                 "(create one with --bless)")
    baseline = load_records(args.baseline)
    regressed = compare(current, baseline, tolerance_pct())
    if regressed and args.dry_run:
        print("bench_compare: --dry-run, regressions reported but not fatal")
        return 0
    return 1 if regressed else 0


if __name__ == "__main__":
    sys.exit(main())
