#!/usr/bin/env bash
#===- jit_smoke.sh - native kernel tier end-to-end smoke -----------------===#
#
# Exercises the specialized/JIT kernel tier (docs/COMPILER.md) through the
# real CLI, for two registry models under both a scalar and a vector
# configuration:
#
#  1. Cold: --engine=native emits the per-model C++ TU, invokes the system
#     compiler, dlopens the kernel ("native kernel <M>: compiled") and the
#     simulation's state checksum is bit-identical to the --engine=vm run.
#  2. Warm: a fresh process re-runs the same compile against the populated
#     LIMPET_CACHE_DIR and must load the cached .so with zero compiler
#     invocations ("native kernel <M>: cache-disk", never "compiled").
#  3. Fallback: with LIMPET_NATIVE_CC pointed at a non-executable, the run
#     still succeeds on the VM (warning, same checksum, exit 0).
#
# On a box with no usable C++ toolchain the whole test SKIPs (exit 77,
# mapped by ctest's SKIP_RETURN_CODE): the tier is designed to degrade,
# not to make CI depend on a compiler being present.
#
# Usage: jit_smoke.sh <path-to-limpetc>
#
#===----------------------------------------------------------------------===#

set -euo pipefail

LIMPETC=${1:?usage: jit_smoke.sh <path-to-limpetc>}
WORK=$(mktemp -d "${TMPDIR:-/tmp}/limpet-jit-smoke.XXXXXX")
trap 'rm -rf "$WORK"' EXIT

MODELS=(HodgkinHuxley Courtemanche)
STEPS=60
CELLS=37 # not a multiple of any lane width: exercises the scalar tail

fail() { echo "jit_smoke: FAIL: $*" >&2; exit 1; }

checksum_of() {
  grep 'state checksum' "$1" | tail -1 | sed 's/.*= //'
}

# The native cache must start empty so "cold" really means cold.
export LIMPET_CACHE_DIR="$WORK/cache"
mkdir -p "$LIMPET_CACHE_DIR"

# Toolchain probe: skip cleanly (not fail) where the tier cannot work.
if ! "$LIMPETC" "${MODELS[0]}" --run --steps 1 --cells 1 --engine=native \
    >"$WORK/probe.out" 2>"$WORK/probe.err"; then
  fail "probe run failed: $(cat "$WORK/probe.err")"
fi
if grep -q 'native tier unavailable' "$WORK/probe.err"; then
  echo "jit_smoke: SKIP: no usable C++ toolchain:"
  grep 'native tier unavailable' "$WORK/probe.err"
  exit 77
fi
rm -rf "$LIMPET_CACHE_DIR"; mkdir -p "$LIMPET_CACHE_DIR"

for MODEL in "${MODELS[@]}"; do
  for CFG in "--width 1" "--width 8"; do
    TAG="$MODEL$(echo "$CFG" | tr -d ' -')"
    RUN=("$MODEL" --run --steps "$STEPS" --cells "$CELLS")
    # shellcheck disable=SC2086
    "$LIMPETC" "${RUN[@]}" $CFG --engine=vm \
      >"$WORK/$TAG.vm.out" 2>"$WORK/$TAG.vm.err" \
      || fail "$TAG: VM run failed"

    # --- 1. cold native: the compiler runs, checksums match exactly ----
    # shellcheck disable=SC2086
    "$LIMPETC" "${RUN[@]}" $CFG --engine=native \
      >"$WORK/$TAG.cold.out" 2>"$WORK/$TAG.cold.err" \
      || fail "$TAG: cold native run failed"
    grep -q "native kernel $MODEL: compiled" "$WORK/$TAG.cold.err" \
      || fail "$TAG: cold run did not compile a native kernel: \
$(cat "$WORK/$TAG.cold.err")"
    grep -q 'engine tier: native' "$WORK/$TAG.cold.out" \
      || fail "$TAG: cold run did not dispatch to the native tier"
    VM=$(checksum_of "$WORK/$TAG.vm.out")
    COLD=$(checksum_of "$WORK/$TAG.cold.out")
    [ -n "$VM" ] || fail "$TAG: VM run printed no state checksum"
    [ "$VM" = "$COLD" ] \
      || fail "$TAG: native diverged from VM: vm=$VM native=$COLD"

    # --- 2. warm native: fresh process, zero compiler invocations ------
    # shellcheck disable=SC2086
    "$LIMPETC" "${RUN[@]}" $CFG --engine=native \
      >"$WORK/$TAG.warm.out" 2>"$WORK/$TAG.warm.err" \
      || fail "$TAG: warm native run failed"
    grep -q "native kernel $MODEL: cache-disk" "$WORK/$TAG.warm.err" \
      || fail "$TAG: warm run did not hit the disk cache: \
$(cat "$WORK/$TAG.warm.err")"
    if grep -q "native kernel $MODEL: compiled" "$WORK/$TAG.warm.err"; then
      fail "$TAG: warm run invoked the compiler"
    fi
    WARM=$(checksum_of "$WORK/$TAG.warm.out")
    [ "$VM" = "$WARM" ] \
      || fail "$TAG: warm native diverged: vm=$VM warm=$WARM"
    echo "jit_smoke: $TAG OK (checksum $VM, cold+warm bit-identical)"
  done
done

# The disk cache holds exactly the expected kernels: 2 models x 2 configs.
SO_COUNT=$(find "$LIMPET_CACHE_DIR" -name '*.native.so' | wc -l)
[ "$SO_COUNT" -eq 4 ] \
  || fail "expected 4 cached .native.so files, found $SO_COUNT"

# --- 3. a broken toolchain degrades to the VM, never fails the run ----------
LIMPET_NATIVE_CC=/nonexistent/cxx LIMPET_CACHE_DIR="$WORK/empty" \
  "$LIMPETC" "${MODELS[0]}" --run --steps "$STEPS" --cells "$CELLS" \
  --engine=native >"$WORK/fb.out" 2>"$WORK/fb.err" \
  || fail "run with broken toolchain did not fall back"
grep -q 'native tier unavailable' "$WORK/fb.err" \
  || fail "fallback run printed no warning"
grep -q 'engine tier: vm (fallback)' "$WORK/fb.out" \
  || fail "fallback run did not report the VM tier"
FB=$(checksum_of "$WORK/fb.out")
VM=$(checksum_of "$WORK/${MODELS[0]}width1.vm.out")
[ "$FB" = "$VM" ] || fail "fallback run diverged: vm=$VM fallback=$FB"
echo "jit_smoke: toolchain fallback OK"
echo "jit_smoke: PASS"
