#!/usr/bin/env bash
# tissue_smoke.sh — end-to-end smoke of the tissue reaction-diffusion
# engine through the limpetc CLI: a tiny 2D run establishes a reference
# state checksum, the same run is SIGKILLed mid-flight and resumed from
# its checkpoints (the resumed checksum must be bit-identical), and a 1D
# cable run must report a physiologically sane conduction velocity.
#
# Usage: tissue_smoke.sh /path/to/limpetc
set -euo pipefail

LIMPETC=${1:?usage: tissue_smoke.sh /path/to/limpetc}
MODEL=HodgkinHuxley

WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

fail() {
  echo "FAIL: $*" >&2
  exit 1
}

checksum_of() {
  grep 'state checksum' "$1" | tail -1 | sed 's/.*= //'
}

# The compile cache is irrelevant here and a stale one could mask a
# miscompile; keep the smoke hermetic.
unset LIMPET_CACHE_DIR

# Small enough to finish in seconds, big enough that a checkpoint cadence
# fits several rotations before the end.
TISSUE_ARGS=(--tissue=24x12 --dx 0.025 --sigma 0.001 --dt 0.005
             --steps 6000 --stim "region:x0=0,x1=1,start=1,dur=2,amp=40,period=12,count=0")

echo "== phase 1: uninterrupted tissue reference run =="
"$LIMPETC" "$MODEL" --run "${TISSUE_ARGS[@]}" > "$WORK/ref.log" 2>&1 \
  || fail "reference tissue run failed: $(cat "$WORK/ref.log")"
grep -q '^tissue 24x12:' "$WORK/ref.log" \
  || fail "reference run did not print the tissue banner"
REF=$(checksum_of "$WORK/ref.log")
[ -n "$REF" ] || fail "reference run printed no state checksum"
echo "   reference checksum: $REF"

echo "== phase 2: SIGKILL mid-run, then --resume must reproduce it =="
# Denser cadences retry if the run outpaces the checkpoint writer.
KILLED=0
for EVERY in 2000 500 100; do
  CKPT="$WORK/ckpt-$EVERY"
  rm -rf "$CKPT"
  "$LIMPETC" "$MODEL" --run "${TISSUE_ARGS[@]}" \
    --checkpoint-dir "$CKPT" --checkpoint-every "$EVERY" \
    > "$WORK/victim.log" 2>&1 &
  PID=$!
  # Wait until at least two rotated checkpoints exist, then pull the plug.
  for _ in $(seq 1 200); do
    if [ "$(ls "$CKPT"/ckpt-*.lmpc 2>/dev/null | wc -l)" -ge 2 ]; then
      break
    fi
    if ! kill -0 "$PID" 2>/dev/null; then
      break
    fi
    sleep 0.05
  done
  if kill -9 "$PID" 2>/dev/null; then
    wait "$PID" 2>/dev/null || true
    if [ "$(ls "$CKPT"/ckpt-*.lmpc 2>/dev/null | wc -l)" -ge 1 ]; then
      KILLED=1
      break
    fi
  fi
  wait "$PID" 2>/dev/null || true
done
[ "$KILLED" -eq 1 ] || fail "could not SIGKILL the run mid-flight with checkpoints on disk"
echo "   killed -9 with $(ls "$CKPT"/ckpt-*.lmpc | wc -l) checkpoint(s) in $CKPT"

"$LIMPETC" "$MODEL" --run "${TISSUE_ARGS[@]}" \
  --checkpoint-dir "$CKPT" --resume > "$WORK/resume.log" 2>&1 \
  || fail "tissue resume failed: $(cat "$WORK/resume.log")"
grep -q 'resumed from' "$WORK/resume.log" \
  || fail "resume run did not report 'resumed from'"
RESUMED=$(checksum_of "$WORK/resume.log")
[ "$RESUMED" = "$REF" ] \
  || fail "resumed checksum $RESUMED != reference $REF (tissue resume is not bit-identical)"
echo "   resumed checksum matches: $RESUMED"

echo "== phase 3: conduction-velocity sanity on a 1D cable =="
"$LIMPETC" "$MODEL" --run --tissue=64 --dx 0.025 --sigma 0.001 --dt 0.01 \
  --steps 4000 --cv 16,48 > "$WORK/cv.log" 2>&1 \
  || fail "CV run failed: $(cat "$WORK/cv.log")"
CV=$(grep 'conduction velocity' "$WORK/cv.log" | sed 's/.*= \([^ ]*\).*/\1/')
[ -n "$CV" ] && [ "$CV" != "n/a" ] \
  || fail "wavefront did not propagate between the CV probes"
# Sane monodomain CV at these parameters is tens of cm/s; accept a wide
# band (0.01..0.2 cm/ms = 10..200 cm/s) so the bound survives model and
# solver tweaks but still catches a broken stencil or stimulus.
awk -v cv="$CV" 'BEGIN { exit !(cv > 0.01 && cv < 0.2) }' \
  || fail "conduction velocity $CV cm/ms outside the sane band (0.01..0.2)"
echo "   conduction velocity $CV cm/ms within bounds"

echo "PASS: tissue smoke (resume bit-identical, CV sane)"
