#!/usr/bin/env bash
#===- cache_gc_stress.sh - concurrent bounded-disk-cache stress ----------===#
#
# Two compiler processes hammer one LIMPET_CACHE_DIR under a budget far
# smaller than the combined suite output, so both keep evicting files the
# other may be about to read or has just written:
#
#  1. Two `--suite` runs (different widths, so disjoint artifact keys)
#     race into the same disk tier with LIMPET_CACHE_MAX_BYTES set. Both
#     must exit 0 -- a file evicted under a concurrent reader/writer is
#     never an error, just a miss.
#  2. After both finish, the directory must be within the budget (the
#     last store always runs eviction) and every surviving file must be
#     a loadable artifact (the winner of each race is intact).
#  3. `--cache-gc` with a tighter budget shrinks it further and reports
#     before/after byte counts.
#
# Usage: cache_gc_stress.sh <path-to-limpetc>
#
#===----------------------------------------------------------------------===#

set -euo pipefail

LIMPETC=${1:?usage: cache_gc_stress.sh <path-to-limpetc>}
WORK=$(mktemp -d "${TMPDIR:-/tmp}/limpet-gc-stress.XXXXXX")
trap 'rm -rf "$WORK"' EXIT

fail() { echo "cache_gc_stress: FAIL: $*" >&2; exit 1; }

dir_bytes() { du -sb "$1" | cut -f1; }

export LIMPET_CACHE_DIR="$WORK/cache"
mkdir -p "$LIMPET_CACHE_DIR"

# The full suite at one width is ~40 MB of artifacts; 8 MB keeps the GC
# busy for the whole run while staying well above the largest single
# artifact (~3 MB), so a fresh store never evicts itself.
BUDGET=$((8 * 1024 * 1024))
export LIMPET_CACHE_MAX_BYTES=$BUDGET

# --- 1. two concurrent suite writers ----------------------------------------
"$LIMPETC" --suite --width 4 >"$WORK/w4.out" 2>&1 &
PID4=$!
"$LIMPETC" --suite --width 8 >"$WORK/w8.out" 2>&1 &
PID8=$!
wait "$PID4" || fail "width-4 suite writer failed under concurrent GC"
wait "$PID8" || fail "width-8 suite writer failed under concurrent GC"
echo "cache_gc_stress: both concurrent suite writers exited 0"

# --- 2. the directory honors the budget and survivors are intact -----------
AFTER=$(dir_bytes "$LIMPET_CACHE_DIR")
[ "$AFTER" -le "$BUDGET" ] \
  || fail "cache dir is $AFTER bytes, over the $BUDGET budget"
COUNT=$(ls "$LIMPET_CACHE_DIR"/*.lmpa 2>/dev/null | wc -l)
[ "$COUNT" -ge 1 ] || fail "eviction emptied the cache entirely"
for f in "$LIMPET_CACHE_DIR"/*.lmpa; do
  "$LIMPETC" HodgkinHuxley --load-artifact "$f" --run --steps 5 --cells 8 \
    --no-cache >/dev/null 2>"$WORK/load.err" && continue
  # A survivor for a different model is still fine -- the loader must
  # reject it as a mismatch, not crash or report corruption.
  grep -qi 'corrupt\|truncat\|checksum' "$WORK/load.err" \
    && fail "surviving artifact $f is corrupt after concurrent eviction"
done
echo "cache_gc_stress: $COUNT intact artifact(s), $AFTER <= $BUDGET bytes"

# --- 3. --cache-gc tightens the tier on demand ------------------------------
TIGHT=$((3 * 1024 * 1024))
LIMPET_CACHE_MAX_BYTES=$TIGHT "$LIMPETC" --cache-gc >"$WORK/gc.out" 2>&1 \
  || fail "--cache-gc failed"
grep -q 'evicted' "$WORK/gc.out" || fail "--cache-gc printed no report"
FINAL=$(dir_bytes "$LIMPET_CACHE_DIR")
[ "$FINAL" -le "$TIGHT" ] \
  || fail "--cache-gc left $FINAL bytes, over the $TIGHT budget"
echo "cache_gc_stress: --cache-gc shrank the tier to $FINAL bytes"
echo "cache_gc_stress: PASS"
