#!/usr/bin/env bash
# Runs the same jobs as .github/workflows/ci.yml with whatever toolchains
# this machine has, skipping (loudly) the ones it lacks. Exits non-zero if
# any job that could run failed.
#
#   scripts/ci-local.sh             # all runnable jobs
#   scripts/ci-local.sh --fast      # gcc/Release + telemetry-off only
set -u

cd "$(dirname "$0")/.."
REPO=$PWD
FAST=0
[ "${1:-}" = "--fast" ] && FAST=1

FAILED=()
SKIPPED=()

have() { command -v "$1" >/dev/null 2>&1; }

GENERATOR=""
have ninja && GENERATOR="-G Ninja"

run_job() {
  local name=$1
  shift
  echo
  echo "=== [$name] ==="
  if "$@"; then
    echo "=== [$name] PASS ==="
  else
    echo "=== [$name] FAIL ==="
    FAILED+=("$name")
  fi
}

skip_job() {
  echo
  echo "=== [$1] SKIP: $2 ==="
  SKIPPED+=("$1 ($2)")
}

build_and_test() {
  local dir=$1 cc=$2 cxx=$3 type=$4
  shift 4
  cmake -B "$dir" -S . $GENERATOR -DCMAKE_BUILD_TYPE="$type" \
    -DCMAKE_C_COMPILER="$cc" -DCMAKE_CXX_COMPILER="$cxx" "$@" &&
    cmake --build "$dir" -j "$(nproc)" &&
    (cd "$dir" && ctest --output-on-failure -j "$(nproc)" -LE timing) &&
    (cd "$dir" && ctest --output-on-failure -L timing)
}

# --- build-test matrix ------------------------------------------------------
for compiler in gcc clang; do
  for type in Debug Release; do
    [ $FAST = 1 ] && { [ $compiler = gcc ] && [ "$type" = Release ] || continue; }
    if [ $compiler = gcc ]; then cc=gcc cxx=g++; else cc=clang cxx=clang++; fi
    if ! have $cxx; then
      skip_job "build-test/$compiler-$type" "$cxx not installed"
      continue
    fi
    run_job "build-test/$compiler-$type" \
      build_and_test "build-ci-$compiler-$type" $cc $cxx "$type"
  done
done

# --- driver smoke (--stats + --trace) ---------------------------------------
SMOKE_BUILD=""
for d in build-ci-gcc-Release build-ci-clang-Release build; do
  [ -x "$d/tools/limpetc" ] && { SMOKE_BUILD=$d; break; }
done
if [ -n "$SMOKE_BUILD" ]; then
  smoke() {
    "$SMOKE_BUILD"/tools/limpetc examples/models/hodgkin_huxley.easyml \
      --run --steps 200 --cells 64 --stats --trace /tmp/ci-local.trace.json &&
      python3 -c "import json; json.load(open('/tmp/ci-local.trace.json'))"
  }
  run_job "driver-smoke" smoke
else
  skip_job "driver-smoke" "no built limpetc found"
fi

# --- telemetry-off build ----------------------------------------------------
telemetry_off() {
  cmake -B build-ci-telemetry-off -S . $GENERATOR \
    -DCMAKE_BUILD_TYPE=Release -DLIMPET_TELEMETRY=OFF &&
    cmake --build build-ci-telemetry-off -j "$(nproc)" &&
    (cd build-ci-telemetry-off &&
      ctest --output-on-failure -j "$(nproc)" -E "Telemetry|Trace|BenchStats") &&
    ./build-ci-telemetry-off/tools/limpetc HodgkinHuxley --run --steps 100 \
      --cells 32 --stats --trace /tmp/ci-local-off.trace.json
}
run_job "telemetry-off" telemetry_off

# --- sanitizers -------------------------------------------------------------
if [ $FAST = 1 ]; then
  skip_job "sanitize" "--fast"
else
  sanitize() {
    cmake -B build-ci-san -S . $GENERATOR -DCMAKE_BUILD_TYPE=Debug \
      -DLIMPET_SANITIZE=address,undefined &&
      cmake --build build-ci-san -j "$(nproc)" &&
      for s in nan-state inf-vm persistent lut-corrupt extreme-dt \
        extreme-param sharded ensemble-quarantine ckpt-resume \
        ckpt-truncate ckpt-corrupt ckpt-stale ckpt-enospc \
        journal-enospc tissue-nan-in-stencil tissue-ckpt-resume \
        tissue-cancel-mid-stage daemon-queue-full daemon-deadline \
        daemon-journal-truncate; do
        ./build-ci-san/tools/faultinject $s || return 1
      done &&
      # Native kernel tier under ASan+UBSan: TU emission, the compiler
      # fork/exec, temp-dir cleanup and dlopen (dlclose is skipped in
      # sanitized builds). Skip (77) is a pass: no toolchain, no tier.
      { LIMPET_NATIVE_KEEP_TU=1 scripts/jit_smoke.sh \
          ./build-ci-san/tools/limpetc || [ $? -eq 77 ]; }
  }
  run_job "sanitize" sanitize
fi

# --- crash recovery + cache GC stress ---------------------------------------
if [ $FAST = 1 ]; then
  skip_job "crash-smoke" "--fast"
elif [ -n "$SMOKE_BUILD" ]; then
  run_job "crash-smoke" scripts/crash_smoke.sh "$SMOKE_BUILD/tools/limpetc"
  run_job "cache-gc-stress" \
    scripts/cache_gc_stress.sh "$SMOKE_BUILD/tools/limpetc"
else
  skip_job "crash-smoke" "no built limpetc found"
fi

# --- tissue engine smoke -----------------------------------------------------
if [ $FAST = 1 ]; then
  skip_job "tissue-smoke" "--fast"
elif [ -n "$SMOKE_BUILD" ]; then
  run_job "tissue-smoke" scripts/tissue_smoke.sh "$SMOKE_BUILD/tools/limpetc"
else
  skip_job "tissue-smoke" "no built limpetc found"
fi

# --- native kernel tier smoke -----------------------------------------------
if [ $FAST = 1 ]; then
  skip_job "jit-smoke" "--fast"
elif [ -n "$SMOKE_BUILD" ]; then
  jit_smoke() {
    scripts/jit_smoke.sh "$SMOKE_BUILD/tools/limpetc"
    rc=$?
    [ $rc -eq 77 ] && echo "jit-smoke skipped (no toolchain)" && return 0
    return $rc
  }
  run_job "jit-smoke" jit_smoke
else
  skip_job "jit-smoke" "no built limpetc found"
fi

# --- daemon smoke -----------------------------------------------------------
if [ $FAST = 1 ]; then
  skip_job "daemon-smoke" "--fast"
elif [ -n "$SMOKE_BUILD" ] && [ -x "$SMOKE_BUILD/tools/limpetd" ]; then
  run_job "daemon-smoke" scripts/daemon_smoke.sh \
    "$SMOKE_BUILD/tools/limpetd" "$SMOKE_BUILD/tools/limpetctl"
else
  skip_job "daemon-smoke" "no built limpetd found"
fi

# --- ensemble engine smoke ---------------------------------------------------
if [ $FAST = 1 ]; then
  skip_job "ensemble-smoke" "--fast"
elif [ -n "$SMOKE_BUILD" ]; then
  run_job "ensemble-smoke" scripts/ensemble_smoke.sh \
    "$SMOKE_BUILD/tools/limpetc"
else
  skip_job "ensemble-smoke" "no built limpetc found"
fi

# --- bench smoke + NDJSON ---------------------------------------------------
if [ $FAST = 1 ]; then
  skip_job "bench-smoke" "--fast"
elif [ -n "$SMOKE_BUILD" ] && [ -x "$SMOKE_BUILD/bench/micro_benchmarks" ]; then
  bench_smoke() {
    local out=/tmp/ci-local-bench-stats.ndjson
    rm -f "$out"
    LIMPET_BENCH_STATS=$out "$SMOKE_BUILD"/bench/micro_benchmarks \
      --benchmark_min_time=0.01 --benchmark_filter='BM_Step.*' &&
      LIMPET_BENCH_STATS=$out LIMPET_BENCH_CELLS=256 LIMPET_BENCH_STEPS=20 \
        LIMPET_BENCH_REPEATS=1 LIMPET_BENCH_MODELS=HodgkinHuxley \
        "$SMOKE_BUILD"/bench/fig2_single_thread &&
      LIMPET_BENCH_STATS=$out LIMPET_BENCH_CELLS=256 LIMPET_BENCH_STEPS=20 \
        LIMPET_BENCH_REPEATS=1 "$SMOKE_BUILD"/bench/tissue_bench &&
      LIMPET_BENCH_STATS=$out LIMPET_BENCH_CELLS=256 LIMPET_BENCH_STEPS=20 \
        LIMPET_BENCH_REPEATS=1 "$SMOKE_BUILD"/bench/ensemble_bench &&
      python3 - "$out" <<'EOF'
import json, sys
lines = open(sys.argv[1]).read().splitlines()
assert lines, "no NDJSON records produced"
for line in lines:
    rec = json.loads(line)
    assert "model" in rec and "seconds" in rec, rec
print(f"{len(lines)} valid NDJSON records")
EOF
  }
  run_job "bench-smoke" bench_smoke
  run_job "bench-compare-selftest" python3 scripts/bench_compare.py --selftest
  # Blocking comparison against the committed baseline, with the same
  # generous cross-machine tolerance CI uses (override the env to
  # tighten locally; re-bless with --bless after intentional changes).
  if [ -f bench/baselines/ci-smoke.ndjson ] &&
    [ -f /tmp/ci-local-bench-stats.ndjson ]; then
    bench_compare_blocking() {
      LIMPET_BENCH_TOLERANCE_PCT=${LIMPET_BENCH_TOLERANCE_PCT:-300} \
        python3 scripts/bench_compare.py /tmp/ci-local-bench-stats.ndjson
    }
    run_job "bench-compare" bench_compare_blocking
  fi
else
  skip_job "bench-smoke" "no built micro_benchmarks found"
fi

# --- clang-format -----------------------------------------------------------
if have clang-format; then
  format_check() {
    git ls-files '*.cpp' '*.h' | xargs clang-format --dry-run --Werror
  }
  run_job "format" format_check
else
  skip_job "format" "clang-format not installed"
fi

# --- summary ----------------------------------------------------------------
echo
echo "==================== ci-local summary ===================="
[ ${#SKIPPED[@]} -gt 0 ] && printf 'SKIP  %s\n' "${SKIPPED[@]}"
if [ ${#FAILED[@]} -gt 0 ]; then
  printf 'FAIL  %s\n' "${FAILED[@]}"
  exit 1
fi
echo "All runnable jobs passed."
