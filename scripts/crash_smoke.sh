#!/usr/bin/env bash
#===- crash_smoke.sh - SIGKILL/SIGTERM crash-recovery smoke --------------===#
#
# The durability contract through the real CLI, with real signals
# (docs/ROBUSTNESS.md):
#
#  1. Reference: an uninterrupted --run, recording its state checksum.
#  2. SIGKILL: the same run with --checkpoint-every, killed with -9 once
#     checkpoints exist. A --resume run must pick up the newest valid
#     checkpoint and finish with the *identical* state checksum.
#  3. SIGTERM: a long run terminated politely must exit 0 (graceful
#     shutdown), report the interruption, and leave a final checkpoint a
#     --resume run again finishes bit-identically from.
#  4. A corrupted newest checkpoint: --resume must fall back to an older
#     valid one and still match the reference.
#
# Usage: crash_smoke.sh <path-to-limpetc>
#
#===----------------------------------------------------------------------===#

set -euo pipefail

LIMPETC=${1:?usage: crash_smoke.sh <path-to-limpetc>}
WORK=$(mktemp -d "${TMPDIR:-/tmp}/limpet-crash-smoke.XXXXXX")
trap 'rm -rf "$WORK"' EXIT

MODEL=HodgkinHuxley
# Big enough that a mid-run kill is easy to land, small enough to finish
# in a few seconds when undisturbed.
STEPS=400000
CELLS=256
FLAGS=(--run --width 4 --layout aosoa --steps $STEPS --cells $CELLS)

fail() { echo "crash_smoke: FAIL: $*" >&2; exit 1; }

checksum_of() {
  grep 'state checksum' "$1" | tail -1 | sed 's/.*= //'
}

unset LIMPET_CACHE_DIR

# --- 1. uninterrupted reference ---------------------------------------------
"$LIMPETC" "$MODEL" "${FLAGS[@]}" >"$WORK/ref.out" 2>&1 \
  || fail "reference run failed"
REF=$(checksum_of "$WORK/ref.out")
[ -n "$REF" ] || fail "reference run printed no state checksum"
echo "crash_smoke: reference checksum $REF"

# --- 2. SIGKILL mid-run, then --resume --------------------------------------
# Retry with a denser checkpoint cadence if the run ever finishes before
# the kill lands (a very fast machine).
KILLED=0
for every in 20000 5000 1000; do
  rm -rf "$WORK/ck"
  "$LIMPETC" "$MODEL" "${FLAGS[@]}" \
    --checkpoint-dir "$WORK/ck" --checkpoint-every $every \
    >"$WORK/victim.out" 2>&1 &
  PID=$!
  # Kill -9 once at least two checkpoint files exist, so the later
  # corrupt-newest phase has an older one to fall back to.
  for _ in $(seq 1 200); do
    if [ "$(ls "$WORK/ck"/ckpt-*.lmpc 2>/dev/null | wc -l)" -ge 2 ]; then
      break
    fi
    kill -0 "$PID" 2>/dev/null || break
    sleep 0.05
  done
  if kill -9 "$PID" 2>/dev/null; then
    wait "$PID" 2>/dev/null || true
    if ls "$WORK/ck"/ckpt-*.lmpc >/dev/null 2>&1; then
      KILLED=1
      break
    fi
  else
    wait "$PID" 2>/dev/null || true
  fi
done
[ $KILLED = 1 ] || fail "could not SIGKILL the run with checkpoints on disk"
echo "crash_smoke: SIGKILLed mid-run with $(ls "$WORK/ck" | wc -l) checkpoint(s)"

"$LIMPETC" "$MODEL" "${FLAGS[@]}" --checkpoint-dir "$WORK/ck" --resume \
  >"$WORK/resumed.out" 2>&1 || fail "--resume after SIGKILL failed"
grep -q 'resumed from' "$WORK/resumed.out" \
  || fail "resume did not report its checkpoint"
RESUMED=$(checksum_of "$WORK/resumed.out")
[ "$RESUMED" = "$REF" ] \
  || fail "resumed run diverged after SIGKILL: ref=$REF resumed=$RESUMED"
echo "crash_smoke: SIGKILL -> resume bit-identical OK"

# --- 3. SIGTERM graceful shutdown, then --resume ----------------------------
rm -rf "$WORK/ck2"
"$LIMPETC" "$MODEL" "${FLAGS[@]}" \
  --checkpoint-dir "$WORK/ck2" --checkpoint-every 20000 \
  >"$WORK/term.out" 2>&1 &
PID=$!
sleep 0.7
if kill -TERM "$PID" 2>/dev/null; then
  wait "$PID" && TERM_EXIT=0 || TERM_EXIT=$?
else
  wait "$PID" && TERM_EXIT=0 || TERM_EXIT=$?
fi
if grep -q 'interrupted at step' "$WORK/term.out"; then
  [ "$TERM_EXIT" = 0 ] || fail "graceful SIGTERM exit code was $TERM_EXIT"
  ls "$WORK/ck2"/ckpt-*.lmpc >/dev/null 2>&1 \
    || fail "SIGTERM left no final checkpoint"
  "$LIMPETC" "$MODEL" "${FLAGS[@]}" --checkpoint-dir "$WORK/ck2" --resume \
    >"$WORK/term-resumed.out" 2>&1 || fail "--resume after SIGTERM failed"
  TERM_RESUMED=$(checksum_of "$WORK/term-resumed.out")
  [ "$TERM_RESUMED" = "$REF" ] \
    || fail "resume after SIGTERM diverged: ref=$REF got=$TERM_RESUMED"
  echo "crash_smoke: SIGTERM graceful shutdown + resume OK"
else
  # The run outraced the signal; the clean exit already proves nothing
  # broke, and the SIGKILL phase covered the recovery path.
  echo "crash_smoke: SIGTERM landed after completion, skipping (run too fast)"
fi

# --- 4. corrupted newest checkpoint falls back ------------------------------
NEWEST=$(ls "$WORK/ck"/ckpt-*.lmpc | sort | tail -1)
COUNT=$(ls "$WORK/ck"/ckpt-*.lmpc | wc -l)
if [ "$COUNT" -ge 2 ]; then
  printf 'garbage' | dd of="$NEWEST" bs=1 seek=24 conv=notrunc 2>/dev/null
  "$LIMPETC" "$MODEL" "${FLAGS[@]}" --checkpoint-dir "$WORK/ck" --resume \
    >"$WORK/fallback.out" 2>&1 || fail "--resume with corrupt newest failed"
  grep -q 'skipped' "$WORK/fallback.out" \
    || fail "resume did not report the skipped corrupt checkpoint"
  FALLBACK=$(checksum_of "$WORK/fallback.out")
  [ "$FALLBACK" = "$REF" ] \
    || fail "fallback resume diverged: ref=$REF got=$FALLBACK"
  echo "crash_smoke: corrupt-newest fallback OK"
else
  echo "crash_smoke: only one checkpoint survived the kill, skipping fallback"
fi

echo "crash_smoke: PASS"
