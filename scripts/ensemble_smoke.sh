#!/usr/bin/env bash
# ensemble_smoke.sh — end-to-end smoke of the fault-isolated ensemble
# engine through the limpetc CLI: a 1000-member sweep with three seeded
# pathological members must finish exit 0 delivering every member's
# result (997 ok + 3 quarantined, NDJSON line per member); the same run
# is SIGKILLed mid-flight and resumed from its checkpoints, and the
# resumed per-member ledger (status, retries, quarantine step, state
# checksum) must be byte-identical to the uninterrupted reference.
#
# Usage: ensemble_smoke.sh /path/to/limpetc
set -euo pipefail

LIMPETC=${1:?usage: ensemble_smoke.sh /path/to/limpetc}
MODEL=HodgkinHuxley

WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

fail() {
  echo "FAIL: $*" >&2
  exit 1
}

checksum_of() {
  grep 'state checksum' "$1" | tail -1 | sed 's/.*= //'
}

# The compile cache is irrelevant here and a stale one could mask a
# miscompile; keep the smoke hermetic.
unset LIMPET_CACHE_DIR

# 1000 members sweeping gNa over a physiological band, with members 137,
# 500 and 863 replaced by finite-but-pathological conductances (the
# non-finite forms are rejected at parse time by design, so the poison
# has to get past admission and blow up numerically mid-run).
MEMBERS=$WORK/members.json
awk 'BEGIN {
  printf("[");
  for (i = 0; i < 1000; i++) {
    v = sprintf("%.10g", 90 + 40 * i / 999);
    if (i == 137) v = "1000000000";
    if (i == 500) v = "-1000000";
    if (i == 863) v = "1000000000000";
    printf("%s{\"gNa\":%s}", i ? "," : "", v);
  }
  printf("]\n");
}' > "$MEMBERS"

RUN_ARGS=(--run --ensemble "$MEMBERS" --member-cells 1 --guard
          --steps 4000)

echo "== phase 1: 1000-member sweep with 3 poison members, uninterrupted =="
"$LIMPETC" "$MODEL" "${RUN_ARGS[@]}" --member-stats "$WORK/ref-stats.ndjson" \
  > "$WORK/ref.log" 2>&1 \
  || fail "poisoned sweep did not exit 0: $(tail -5 "$WORK/ref.log")"
grep -q '^ensemble: 1000 members x 1 cells' "$WORK/ref.log" \
  || fail "run did not print the ensemble banner"
grep -q '^ensemble members: 997 ok, 3 quarantined$' "$WORK/ref.log" \
  || fail "expected 997 ok + 3 quarantined, got: $(grep '^ensemble members' "$WORK/ref.log")"
grep -q '^population health: ok$' "$WORK/ref.log" \
  || fail "quarantine did not keep the population healthy"
[ "$(wc -l < "$WORK/ref-stats.ndjson")" -eq 1000 ] \
  || fail "member stats must have one NDJSON line per member"
[ "$(grep -c '"status":"quarantined"' "$WORK/ref-stats.ndjson")" -eq 3 ] \
  || fail "expected exactly 3 quarantined member records"
for M in 137 500 863; do
  grep -q "^{\"member\":$M,\"status\":\"quarantined\"" "$WORK/ref-stats.ndjson" \
    || fail "seeded poison member $M was not the one quarantined"
done
REF=$(checksum_of "$WORK/ref.log")
[ -n "$REF" ] || fail "reference run printed no state checksum"
echo "   997 ok + 3 quarantined (members 137/500/863), checksum $REF"

echo "== phase 2: SIGKILL mid-sweep, then --resume must reproduce it =="
# Denser cadences retry if the run outpaces the checkpoint writer.
KILLED=0
for EVERY in 1000 250 50; do
  CKPT="$WORK/ckpt-$EVERY"
  rm -rf "$CKPT"
  "$LIMPETC" "$MODEL" "${RUN_ARGS[@]}" \
    --checkpoint-dir "$CKPT" --checkpoint-every "$EVERY" \
    > "$WORK/victim.log" 2>&1 &
  PID=$!
  # Wait until at least two rotated checkpoints exist, then pull the plug.
  for _ in $(seq 1 200); do
    if [ "$(ls "$CKPT"/ckpt-*.lmpc 2>/dev/null | wc -l)" -ge 2 ]; then
      break
    fi
    if ! kill -0 "$PID" 2>/dev/null; then
      break
    fi
    sleep 0.05
  done
  if kill -9 "$PID" 2>/dev/null; then
    wait "$PID" 2>/dev/null || true
    if [ "$(ls "$CKPT"/ckpt-*.lmpc 2>/dev/null | wc -l)" -ge 1 ]; then
      KILLED=1
      break
    fi
  fi
  wait "$PID" 2>/dev/null || true
done
[ "$KILLED" -eq 1 ] || fail "could not SIGKILL the sweep mid-flight with checkpoints on disk"
echo "   killed -9 with $(ls "$CKPT"/ckpt-*.lmpc | wc -l) checkpoint(s) in $CKPT"

"$LIMPETC" "$MODEL" "${RUN_ARGS[@]}" \
  --checkpoint-dir "$CKPT" --resume \
  --member-stats "$WORK/resume-stats.ndjson" > "$WORK/resume.log" 2>&1 \
  || fail "ensemble resume failed: $(tail -5 "$WORK/resume.log")"
grep -q 'resumed from' "$WORK/resume.log" \
  || fail "resume run did not report 'resumed from'"
RESUMED=$(checksum_of "$WORK/resume.log")
[ "$RESUMED" = "$REF" ] \
  || fail "resumed checksum $RESUMED != reference $REF (ensemble resume is not bit-identical)"
# The whole per-member ledger — status, quarantine step, retry counts,
# member state checksums — must survive the kill, not just the aggregate.
diff -u "$WORK/ref-stats.ndjson" "$WORK/resume-stats.ndjson" > /dev/null \
  || fail "resumed per-member stats differ from the uninterrupted reference"
echo "   resumed checksum and all 1000 member records match"

echo "== phase 3: a clean grid sweep quarantines nothing =="
"$LIMPETC" "$MODEL" --run --sweep "gNa=90:130:64" --guard --steps 1000 \
  > "$WORK/clean.log" 2>&1 \
  || fail "clean sweep failed: $(tail -5 "$WORK/clean.log")"
grep -q '^ensemble members: 64 ok, 0 quarantined$' "$WORK/clean.log" \
  || fail "clean sweep quarantined members: $(grep '^ensemble members' "$WORK/clean.log")"
echo "   64/64 members ok"

echo "PASS: ensemble smoke (partial results, quarantine, resume bit-identical)"
