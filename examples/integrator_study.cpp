//===- integrator_study.cpp - comparing the six integration methods ------------===//
//
// Reproduces the paper's Sec. 3.3.2 discussion as a runnable study: the
// same stiff gate equation is integrated with all six methods at several
// time steps, demonstrating why Rush-Larsen (and its second-order Sundnes
// variant) is the method of choice for gates, rk4 for accuracy, and
// markov_be for stiff probability-valued states.
//
//===----------------------------------------------------------------------===//

#include "easyml/Sema.h"
#include "exec/CompiledModel.h"
#include "support/StringUtils.h"

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

using namespace limpet;

namespace {

/// Integrates a single-variable model for 1 ms and returns the final y.
double integrate(const std::string &Source, double Dt) {
  DiagnosticEngine Diags;
  auto Info = easyml::compileModelInfo("ode", Source, Diags);
  if (!Info) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    return NAN;
  }
  auto Model =
      exec::CompiledModel::compile(*Info, exec::EngineConfig::baseline());
  std::vector<double> State(Model->stateArraySize(1));
  Model->initializeState(State.data(), 1);
  std::vector<double> Params = Model->defaultParams();
  exec::KernelArgs Args;
  Args.State = State.data();
  Args.Params = Params.data();
  Args.Start = 0;
  Args.End = 1;
  Args.NumCells = 1;
  Args.Dt = Dt;
  int64_t Steps = int64_t(std::llround(1.0 / Dt));
  for (int64_t I = 0; I != Steps; ++I) {
    Args.T = double(I) * Dt;
    Model->computeStep(Args);
  }
  return Model->readState(State.data(), 0, 0, 1);
}

} // namespace

int main() {
  // A stiff gate: dy/dt = a(1-y) - b y with a=40/ms, b=160/ms
  // (tau = 5 microseconds -- far below a typical 10 microsecond dt).
  const double A = 40.0, B = 160.0, Y0 = 0.9;
  const double YInf = A / (A + B);
  const double Exact = YInf + (Y0 - YInf) * std::exp(-(A + B) * 1.0);

  std::printf("stiff gate: dy/dt = %.0f*(1-y) - %.0f*y, y(0)=%.1f, "
              "y(1ms) exact = %.9f\n\n",
              A, B, Y0, Exact);
  std::printf("%-12s", "method");
  const double Dts[] = {0.1, 0.02, 0.005};
  for (double Dt : Dts)
    std::printf("  %14s", ("err @dt=" + formatDouble(Dt)).c_str());
  std::printf("\n");

  for (const char *Method :
       {"fe", "rk2", "rk4", "rush_larsen", "sundnes", "markov_be"}) {
    std::string Src = "diff_y = 40.0*(1.0-y) - 160.0*y;\ny_init = 0.9;\n"
                      "y; .method(" +
                      std::string(Method) + ");\n";
    std::printf("%-12s", Method);
    for (double Dt : Dts) {
      double Y = integrate(Src, Dt);
      double Err = std::fabs(Y - Exact);
      if (!std::isfinite(Y) || Err > 1e3)
        std::printf("  %14s", "diverged");
      else
        std::printf("  %14.3e", Err);
    }
    std::printf("\n");
  }

  std::printf("\nexpected shape: fe/rk2/rk4 diverge at dt >= 0.02 "
              "(dt*(a+b) > 2), while the\nRush-Larsen family and "
              "markov_be stay stable at every step size — the reason\n"
              "openCARP integrates gates with rush_larsen by default "
              "(paper Sec. 3.3.2).\n");
  return 0;
}
