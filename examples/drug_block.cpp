//===- drug_block.cpp - virtual sodium-channel block study ----------------------===//
//
// The kind of application the paper motivates ("virtual drug testing in
// cardiac research", Sec. 4.1), lifted to tissue scale: sweep the sodium
// conductance of the Hodgkin-Huxley model to emulate increasing channel
// block and measure how conduction degrades along a 1D cable — the
// clinically relevant readout of INa block is conduction slowing, not
// just a smaller AP. Each arm stimulates the x=0 edge, lets the wavefront
// propagate through the reaction-diffusion engine, and reads conduction
// velocity off the activation map. Parameters are runtime values (LUT
// tables are rebuilt per arm, as openCARP does at initialization).
//
//===----------------------------------------------------------------------===//

#include "easyml/Sema.h"
#include "models/Registry.h"
#include "sim/TissueSimulator.h"
#include "support/StringUtils.h"

#include <cmath>
#include <cstdio>

using namespace limpet;

int main() {
  const models::ModelEntry *Entry = models::findModel("HodgkinHuxley");
  DiagnosticEngine Diags;
  auto Info = easyml::compileModelInfo(Entry->Name, Entry->Source, Diags);
  if (!Info) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    return 1;
  }
  auto Model = exec::CompiledModel::compile(
      *Info, exec::EngineConfig::limpetMLIR(8));
  double GNaDefault = Model->defaultParams()[size_t(Info->paramIndex("gNa"))];

  // A 1.6 cm cable; CV is measured between two probes well clear of the
  // stimulus edge and the far boundary.
  const int64_t NX = 64, ProbeA = 16, ProbeB = 48;

  std::printf("virtual INa block on a HodgkinHuxley cable (gNa default "
              "%.0f mS/cm^2,\n%lld nodes, dx=0.025 cm, sigma=0.001 "
              "cm^2/ms)\n\n",
              GNaDefault, (long long)NX);
  std::printf("%-8s  %-10s  %-12s  %-12s  %-10s\n", "block", "gNa",
              "CV (cm/ms)", "CV change", "conducts");

  double CVControl = 0;
  for (double Block : {0.0, 0.25, 0.5, 0.7, 0.85, 0.95}) {
    sim::TissueOptions T;
    T.Grid = {NX, 1, 0.025};
    T.Sigma = 0.001;
    T.Sim.NumSteps = 4000; // 40 ms: enough for the slowest conducting arm
    T.Sim.Dt = 0.01;
    T.Sim.NumThreads = 2;
    T.Sim.StimStart = 1.0;
    T.Sim.StimDuration = 2.0;
    T.Sim.StimStrength = 40.0;

    sim::TissueSimulator Sim(*Model, T);
    if (Status S = Sim.preflight(); !S) {
      std::fprintf(stderr, "error: %s\n", S.message().c_str());
      return 1;
    }
    Sim.setParam("gNa", GNaDefault * (1.0 - Block));
    Sim.enableActivationMap(-20.0);
    Sim.run();

    double CV = Sim.conductionVelocity(ProbeA, ProbeB);
    bool Conducts = std::isfinite(CV) && CV > 0;
    if (Block == 0.0)
      CVControl = CV;
    std::string Change = "n/a";
    if (Conducts && CVControl > 0)
      Change = formatFixed((CV / CVControl - 1.0) * 100.0, 1) + "%";
    std::printf("%-8s  %-10s  %-12s  %-12s  %-10s\n",
                (formatFixed(Block * 100, 0) + "%").c_str(),
                formatFixed(GNaDefault * (1.0 - Block), 1).c_str(),
                Conducts ? formatFixed(CV, 4).c_str() : "block",
                Change.c_str(), Conducts ? "yes" : "no");
  }

  std::printf("\nexpected shape: CV falls with increasing INa block "
              "(roughly with\nsqrt(gNa)) until propagation fails outright "
              "at high block fractions —\nthe tissue-scale signature a "
              "single-cell sweep cannot show.\n");
  return 0;
}
