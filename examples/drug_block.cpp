//===- drug_block.cpp - virtual sodium-channel block study ----------------------===//
//
// The kind of application the paper motivates ("virtual drug testing in
// cardiac research", Sec. 4.1): sweep the sodium conductance of the
// Hodgkin-Huxley model to emulate increasing channel block and report how
// the action potential degrades, running each arm of the sweep on the
// vectorized engine over a cell population. Parameters are runtime values
// (LUT tables are rebuilt per arm, as openCARP does at initialization).
//
//===----------------------------------------------------------------------===//

#include "easyml/Sema.h"
#include "models/Registry.h"
#include "sim/Simulator.h"
#include "support/StringUtils.h"

#include <cmath>
#include <cstdio>

using namespace limpet;

int main() {
  const models::ModelEntry *Entry = models::findModel("HodgkinHuxley");
  DiagnosticEngine Diags;
  auto Info = easyml::compileModelInfo(Entry->Name, Entry->Source, Diags);
  if (!Info) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    return 1;
  }
  auto Model = exec::CompiledModel::compile(
      *Info, exec::EngineConfig::limpetMLIR(8));
  double GNaDefault = Model->defaultParams()[size_t(Info->paramIndex("gNa"))];

  std::printf("virtual INa block on HodgkinHuxley (gNa default %.0f "
              "mS/cm^2)\n\n",
              GNaDefault);
  std::printf("%-8s  %-10s  %-10s  %-12s\n", "block", "gNa", "peak Vm",
              "AP elicited");

  for (double Block : {0.0, 0.25, 0.5, 0.7, 0.85, 0.95}) {
    sim::SimOptions Opts;
    Opts.NumCells = 256;
    Opts.NumSteps = 2000; // 20 ms
    Opts.StimStart = 1.0;
    Opts.StimDuration = 1.0;
    Opts.StimStrength = 40.0;
    Opts.RecordTrace = true;
    sim::Simulator Sim(*Model, Opts);
    Sim.setParam("gNa", GNaDefault * (1.0 - Block));
    Sim.run();

    double Peak = -1e30;
    for (double V : Sim.trace())
      Peak = std::max(Peak, V);
    bool Elicited = Peak > 0.0;
    std::printf("%-8s  %-10s  %-10s  %-12s\n",
                (formatFixed(Block * 100, 0) + "%").c_str(),
                formatFixed(GNaDefault * (1.0 - Block), 1).c_str(),
                (formatFixed(Peak, 1) + " mV").c_str(),
                Elicited ? "yes" : "no");
  }

  std::printf("\nexpected shape: the AP amplitude shrinks with increasing "
              "block and\nexcitability is lost outright at high block "
              "fractions.\n");
  return 0;
}
