//===- action_potential.cpp - Hodgkin-Huxley AP traces -------------------------===//
//
// Runs the classic Hodgkin-Huxley model from the 43-model suite and emits
// the action potential as CSV (time, Vm, m, h, n) on stdout — the
// single-cell workflow the openCARP `bench` tool supports. Also reports
// the wall-time advantage of the limpetMLIR configuration on the same
// population.
//
// Usage: ./build/examples/action_potential [model-name] > ap.csv
//
//===----------------------------------------------------------------------===//

#include "bench/BenchHarness.h"
#include "easyml/Sema.h"
#include "models/Registry.h"
#include "sim/Simulator.h"

#include <chrono>
#include <cstdio>

using namespace limpet;

int main(int argc, char **argv) {
  const char *Name = argc > 1 ? argv[1] : "HodgkinHuxley";
  const models::ModelEntry *Entry = models::findModel(Name);
  if (!Entry) {
    std::fprintf(stderr, "unknown model '%s'; available models:\n", Name);
    for (const models::ModelEntry &M : models::modelRegistry())
      std::fprintf(stderr, "  %s\n", M.Name.c_str());
    return 1;
  }

  DiagnosticEngine Diags;
  auto Info = easyml::compileModelInfo(Entry->Name, Entry->Source, Diags);
  if (!Info) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    return 1;
  }
  auto Model = exec::CompiledModel::compile(
      *Info, exec::EngineConfig::limpetMLIR(8));

  sim::SimOptions Opts;
  Opts.NumCells = 512;
  Opts.NumSteps = 3000; // 30 ms
  Opts.Dt = 0.01;
  Opts.StimStart = 1.0;
  Opts.StimDuration = 1.0;
  Opts.StimStrength = 40.0;
  sim::Simulator Sim(*Model, Opts);

  // CSV header: time plus Vm and every state variable of cell 0.
  std::printf("t_ms,Vm");
  for (const auto &SV : Info->StateVars)
    std::printf(",%s", SV.Name.c_str());
  std::printf("\n");

  auto T0 = std::chrono::steady_clock::now();
  for (int64_t Step = 0; Step != Opts.NumSteps; ++Step) {
    Sim.step();
    if (Step % 10 != 0)
      continue; // decimate the output
    std::printf("%.2f,%.4f", Sim.time(), Sim.vm(0));
    for (size_t Sv = 0; Sv != Info->StateVars.size(); ++Sv)
      std::printf(",%.6f", Sim.stateOf(0, int64_t(Sv)));
    std::printf("\n");
  }
  auto T1 = std::chrono::steady_clock::now();

  std::fprintf(stderr, "%s: %lld cells x %lld steps in %.3f s "
               "(limpetMLIR, 8 lanes)\n",
               Entry->Name.c_str(), (long long)Opts.NumCells,
               (long long)Opts.NumSteps,
               std::chrono::duration<double>(T1 - T0).count());
  return 0;
}
