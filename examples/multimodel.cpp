//===- multimodel.cpp - parent/offspring model composition ----------------------===//
//
// The paper's multimodel feature (Sec. 3.3.2) as a runnable scenario: a
// Hodgkin-Huxley parent cell composed with a stretch-activated-channel
// (SAC) plugin. Both models share the Vm/Iion externals — the plugin
// accumulates its current with the openCARP idiom `Iion = Iion + I_sac;`
// — and the plugin additionally *reads the parent's n gate* through a
// parent-state binding, demonstrating offspring access to parent state
// with fallback-to-local semantics for unbound externals.
//
//===----------------------------------------------------------------------===//

#include "easyml/Sema.h"
#include "models/Registry.h"
#include "sim/Multimodel.h"

#include <cstdio>

using namespace limpet;

static const char *SacPluginSrc = R"EASYML(
# Stretch-activated channel plugin: adds a linear cationic current gated
# by slow activation, modulated by the parent's potassium gate (read
# through a parent-state binding).
Vm; .external(); .nodal();
Iion; .external(); .nodal();
n_parent; .external(); .nodal();

group{ g_sac = 0.25; E_sac = -10.0; tau_s = 20.0; }.param();

s_inf = 1.0/(1.0 + exp(-(Vm + 40.0)/10.0));
diff_s = (s_inf - s)/tau_s;
s_init = 0.0;
s; .method(rush_larsen);

Iion = Iion + g_sac*s*(1.0 - 0.5*n_parent)*(Vm - E_sac);
)EASYML";

int main() {
  // Parent: the real Hodgkin-Huxley model from the 43-model suite.
  const models::ModelEntry *Entry = models::findModel("HodgkinHuxley");
  DiagnosticEngine Diags;
  auto ParentInfo =
      easyml::compileModelInfo(Entry->Name, Entry->Source, Diags);
  auto PluginInfo = easyml::compileModelInfo("SAC", SacPluginSrc, Diags);
  if (!ParentInfo || !PluginInfo) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    return 1;
  }
  auto Parent = exec::CompiledModel::compile(
      *ParentInfo, exec::EngineConfig::limpetMLIR(8));
  auto Plugin = exec::CompiledModel::compile(
      *PluginInfo, exec::EngineConfig::limpetMLIR(8));

  sim::SimOptions Opts;
  Opts.NumCells = 256;
  Opts.NumSteps = 2500; // 25 ms
  Opts.StimStart = 1.0;
  Opts.StimDuration = 1.0;
  Opts.StimStrength = 40.0;

  sim::MultimodelSimulator Plain(*Parent, Opts);
  sim::MultimodelSimulator WithSac(*Parent, Opts);
  WithSac.addPlugin(*Plugin,
                    {{"n_parent", "n", /*Writable=*/false}});

  std::printf("t_ms,Vm_plain,Vm_with_sac,sac_gate,parent_n\n");
  for (int64_t Step = 0; Step != Opts.NumSteps; ++Step) {
    Plain.step();
    WithSac.step();
    if (Step % 25 == 0)
      std::printf("%.2f,%.3f,%.3f,%.4f,%.4f\n", Plain.time(), Plain.vm(0),
                  WithSac.vm(0), WithSac.pluginState(0, 0, 0),
                  WithSac.parentState(0, 2));
  }

  std::fprintf(stderr,
               "final Vm: plain %.3f mV vs with SAC %.3f mV — the plugin "
               "current\ndepolarizes the plateau, the classic SAC "
               "signature.\n",
               Plain.vm(0), WithSac.vm(0));
  return 0;
}
