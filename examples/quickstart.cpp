//===- quickstart.cpp - 60-second tour of the library --------------------------===//
//
// Write an ionic model in EasyML, compile it through the full limpetMLIR
// pipeline (frontend -> preprocessor -> integrator expansion -> LUT
// extraction -> IR -> passes -> vectorization -> bytecode), inspect the
// generated IR, and simulate a small cell population with both the
// openCARP-baseline and limpetMLIR configurations.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "easyml/Sema.h"
#include "exec/CompiledModel.h"
#include "ir/Printer.h"
#include "sim/Simulator.h"

#include <cstdio>

using namespace limpet;

// A two-variable excitable membrane in EasyML: Vm and Iion are the
// externals every openCARP model exposes; `w` is a recovery state
// integrated with Rush-Larsen; the rate is LUT-accelerated.
static const char *ModelSource = R"EASYML(
Vm; .external(); .nodal(); .lookup(-100, 100, 0.05);
Iion; .external(); .nodal();
Vm_init = -80.0;

group{ g = 0.3; E_rest = -80.0; }.param();

rate = 0.4*exp(Vm/25.0)/(1.0 + exp(Vm/25.0));
diff_w = rate*(1.0 - w) - 0.2*w;
w_init = 0.1;
w; .method(rush_larsen);

Iion = g*(Vm - E_rest)*(1.0 + 2.0*w);
)EASYML";

int main() {
  // 1. Frontend: parse + semantic analysis.
  DiagnosticEngine Diags;
  auto Info = easyml::compileModelInfo("Quickstart", ModelSource, Diags);
  if (!Info) {
    std::fprintf(stderr, "frontend errors:\n%s", Diags.str().c_str());
    return 1;
  }
  std::printf("model '%s': %zu state vars, %zu params, %zu externals, "
              "%zu LUT(s)\n\n",
              Info->Name.c_str(), Info->StateVars.size(),
              Info->Params.size(), Info->Externals.size(),
              Info->Luts.size());

  // 2. Compile for the limpetMLIR configuration (8 lanes, AoSoA, vector
  //    LUT + math) and print the vectorized kernel IR.
  std::string Error;
  auto Model = exec::CompiledModel::compile(
      *Info, exec::EngineConfig::limpetMLIR(8), &Error);
  if (!Model) {
    std::fprintf(stderr, "compile error: %s\n", Error.c_str());
    return 1;
  }
  std::printf("--- vectorized kernel IR ---\n%s\n",
              ir::printOp(Model->kernel().Mod->lookupFunction("compute_vec8"))
                  .c_str());
  std::printf("--- bytecode: %zu prologue + %zu body instructions, %u "
              "registers ---\n\n",
              Model->program().Prologue.size(),
              Model->program().Body.size(), Model->program().NumRegs);

  // 3. Simulate 1,000 cells for 20 ms with a stimulus at t=1 ms.
  sim::SimOptions Opts;
  Opts.NumCells = 1000;
  Opts.NumSteps = 2000;
  Opts.Dt = 0.01;
  Opts.StimStart = 1.0;
  Opts.StimDuration = 2.0;
  Opts.StimStrength = 25.0;
  Opts.RecordTrace = true;
  sim::Simulator Sim(*Model, Opts);
  Sim.run();

  std::printf("simulated %lld cells x %lld steps; final Vm(0) = %.3f mV, "
              "w(0) = %.4f\n",
              (long long)Opts.NumCells, (long long)Opts.NumSteps,
              Sim.vm(0), Sim.stateOf(0, 0));

  // 4. Cross-check against the scalar openCARP-baseline configuration.
  auto Baseline = exec::CompiledModel::compile(
      *Info, exec::EngineConfig::baseline(), &Error);
  sim::Simulator Ref(*Baseline, Opts);
  Ref.run();
  std::printf("baseline cross-check:      final Vm(0) = %.3f mV (match "
              "within %.1e)\n",
              Ref.vm(0), std::abs(Ref.vm(0) - Sim.vm(0)));
  return 0;
}
